//! Churn-aware mutable overlay over the partitioned edge arena.
//!
//! The batch model partitions a frozen edge set once and solves once. A
//! long-running service instead absorbs a stream of edge insertions and
//! deletions and must keep answering queries. The key observation (the same
//! one behind the paper's composability) is that a machine's coreset depends
//! **only on its local edge set** — so churn that leaves a machine's piece
//! untouched leaves its coreset reusable verbatim.
//!
//! For that to work under churn, edge placement must be **churn-stable**: an
//! edge's machine may depend only on the edge's identity (and the run seed),
//! never on how many edges were placed before it. The sequential-RNG
//! placement of [`crate::partition::PartitionedGraph::random`] does not have
//! this property (deleting one edge shifts every later draw), so this module
//! derives the machine from a salted hash of the endpoints instead:
//! [`edge_machine`]. Per edge the choice is still uniform and independent —
//! the model of the paper — and it is reproducible from `(seed, edge)` alone.
//!
//! [`ChurnPartition`] maintains the arena plus per-machine **journals**:
//! a clean machine's piece *is* its arena slice (zero-copy), while a dirty
//! machine's piece is a sorted snapshot buffer that tracks its pending
//! inserts and deletes. Every piece is kept in canonical sorted edge order at
//! all times, so a piece's edge sequence — and therefore its
//! [`fingerprint`](ChurnPartition::piece_fingerprint) — is **bit-identical**
//! to the piece a from-scratch [`crate::partition::PartitionedGraph::by_edge_hash`] partition
//! of the current graph would produce. That identity is what makes
//! clean-piece coreset reuse provably sound (`coresets::cache` keys on it)
//! and lets a dynamic run assert equality against a from-scratch batch run.
//! When the pending-op volume crosses a threshold, the journals are
//! [compacted](ChurnPartition::compact) back into one fresh arena and every
//! machine becomes clean again.

use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::view::GraphView;

/// One edge-churn operation applied to a [`ChurnPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Insert the edge (a no-op if it is already present).
    Insert(Edge),
    /// Delete the edge (a no-op if it is absent).
    Delete(Edge),
}

impl ChurnOp {
    /// The edge the operation refers to.
    #[inline]
    pub fn edge(&self) -> Edge {
        match *self {
            ChurnOp::Insert(e) | ChurnOp::Delete(e) => e,
        }
    }
}

/// SplitMix64 finalizer (stateless form): the standard 64-bit bit mixer used
/// to turn structured inputs into decorrelated hash values.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Churn-stable machine placement: the machine in `0..k` that edge `e` lives
/// on for run seed `seed`.
///
/// The placement is a salted SplitMix64 hash of the canonical endpoint pair,
/// so it depends only on `(seed, e)` — inserting or deleting *other* edges
/// never moves an edge between machines. Per edge the machine is uniform and
/// independent across edges, the random-partition model of the paper.
///
/// `k` must be at least 1 (constructors validate this before placement).
#[inline]
pub fn edge_machine(seed: u64, k: usize, e: Edge) -> usize {
    let packed = ((e.u as u64) << 32) | e.v as u64;
    (mix64(seed ^ mix64(packed)) % k as u64) as usize
}

/// Order-dependent fingerprint of an edge sequence.
///
/// Folds every edge (and finally the length) through the SplitMix64 mixer, so
/// two sequences collide only if they agree element-for-element (up to hash
/// collisions, ~2⁻⁶⁴). Because [`ChurnPartition`] keeps every piece in
/// canonical sorted order, a piece's fingerprint equals the fingerprint of
/// the same machine's piece in a from-scratch
/// [`crate::partition::PartitionedGraph::by_edge_hash`] partition of the current graph — the
/// property coreset cache keys rely on.
pub fn fingerprint_edges<'a, I>(edges: I) -> u64
where
    I: IntoIterator<Item = &'a Edge>,
{
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    let mut len = 0u64;
    for e in edges {
        acc = mix64(acc ^ (((e.u as u64) << 32) | e.v as u64));
        len += 1;
    }
    mix64(acc ^ len)
}

/// Builds the machine-sorted arena (edges + offsets) of `g` under the
/// churn-stable [`edge_machine`] placement. Shared by
/// [`crate::partition::PartitionedGraph::by_edge_hash`] and [`ChurnPartition::new`] so the two
/// constructions are identical by construction.
pub(crate) fn hash_arena(g: &Graph, k: usize, seed: u64) -> (Vec<Edge>, Vec<usize>) {
    let all = g.edges();
    let mut counts = vec![0usize; k];
    for &e in all {
        counts[edge_machine(seed, k, e)] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for i in 0..k {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    // Counting-sort fill, then sort each machine's run: `Graph` does not
    // guarantee an edge order (generators may emit shuffled edges), so the
    // canonical per-piece order is established here explicitly.
    let mut cursor = offsets.clone();
    let mut edges = vec![Edge { u: 0, v: 1 }; all.len()];
    for &e in all {
        let machine = edge_machine(seed, k, e);
        edges[cursor[machine]] = e;
        cursor[machine] += 1;
    }
    for i in 0..k {
        edges[offsets[i]..offsets[i + 1]].sort_unstable();
    }
    (edges, offsets)
}

/// A `k`-partitioned edge set that absorbs insert/delete churn while keeping
/// every machine's piece in the canonical order a from-scratch hash-placed
/// partition would produce.
///
/// Clean machines are served zero-copy from the arena; dirty machines are
/// served from sorted per-machine snapshot buffers maintained incrementally
/// by [`apply`](Self::apply). See the [module docs](self) for the layout and
/// the fingerprint identity.
#[derive(Debug, Clone)]
pub struct ChurnPartition {
    seed: u64,
    n: usize,
    m: usize,
    /// Machine-major arena as of the last compaction; each machine's run is
    /// canonically sorted.
    arena: Vec<Edge>,
    /// `offsets.len() == k + 1`; machine `i`'s arena run is
    /// `arena[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    /// Dirty machines' current piece content (sorted); empty for clean ones.
    snaps: Vec<Vec<Edge>>,
    /// Whether machine `i` has diverged from its arena run.
    dirty: Vec<bool>,
    /// Memoized per-machine fingerprints, valid where `fp_stale[i]` is false
    /// (always the case for clean machines).
    fp: Vec<u64>,
    fp_stale: Vec<bool>,
    /// Pending journal ops per machine since the last compaction.
    pending: Vec<usize>,
    pending_total: usize,
    /// Compact when `pending_total * compact_den >= max(m, 1) * compact_num`.
    compact_num: usize,
    compact_den: usize,
}

impl ChurnPartition {
    /// Partitions `g` across `k` machines under the churn-stable
    /// [`edge_machine`] placement for `seed`, with the default compaction
    /// threshold (pending ops ≥ ¼ of the current edge count).
    pub fn new(g: &Graph, k: usize, seed: u64) -> Result<Self, GraphError> {
        if k == 0 {
            return Err(GraphError::InvalidMachineCount { k });
        }
        let (arena, offsets) = hash_arena(g, k, seed);
        let fp = (0..k)
            .map(|i| fingerprint_edges(&arena[offsets[i]..offsets[i + 1]]))
            .collect();
        Ok(ChurnPartition {
            seed,
            n: g.n(),
            m: arena.len(),
            arena,
            offsets,
            snaps: vec![Vec::new(); k],
            dirty: vec![false; k],
            fp,
            fp_stale: vec![false; k],
            pending: vec![0; k],
            pending_total: 0,
            compact_num: 1,
            compact_den: 4,
        })
    }

    /// Overrides the compaction threshold: compact when
    /// `pending_ops * den >= max(m, 1) * num`. `den` must be non-zero.
    pub fn with_compact_threshold(mut self, num: usize, den: usize) -> Result<Self, GraphError> {
        if den == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "compaction threshold denominator must be non-zero".into(),
            });
        }
        self.compact_num = num;
        self.compact_den = den;
        Ok(self)
    }

    /// Number of vertices (fixed for the lifetime of the partition).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current number of edges across all machines.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The run seed driving the [`edge_machine`] placement.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether machine `i`'s piece has diverged from its arena run since the
    /// last compaction.
    #[inline]
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// Number of machines whose pieces have diverged since the last
    /// compaction.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Journal ops (inserts + deletes) applied since the last compaction.
    #[inline]
    pub fn pending_ops(&self) -> usize {
        self.pending_total
    }

    /// Applies one churn operation. Returns `Ok(true)` if the edge set
    /// changed, `Ok(false)` for a no-op (inserting a present edge, deleting
    /// an absent one).
    ///
    /// Cost: a binary search plus, for effective ops, an in-place sorted
    /// insert/remove in the machine's snapshot — `O(log p + p)` for piece
    /// size `p`. The first effective op on a clean machine additionally
    /// copies its arena run into the snapshot buffer.
    pub fn apply(&mut self, op: ChurnOp) -> Result<bool, GraphError> {
        let e = op.edge();
        if e.v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: e.v,
                n: self.n,
            });
        }
        let machine = edge_machine(self.seed, self.k(), e);
        let piece = self.piece_slice(machine);
        let found = piece.binary_search(&e);
        match (op, found) {
            (ChurnOp::Insert(_), Ok(_)) | (ChurnOp::Delete(_), Err(_)) => Ok(false),
            (ChurnOp::Insert(_), Err(pos)) => {
                self.ensure_snapshot(machine);
                self.snaps[machine].insert(pos, e);
                self.m += 1;
                self.note_change(machine);
                Ok(true)
            }
            (ChurnOp::Delete(_), Ok(pos)) => {
                self.ensure_snapshot(machine);
                self.snaps[machine].remove(pos);
                self.m -= 1;
                self.note_change(machine);
                Ok(true)
            }
        }
    }

    /// Copies machine `i`'s arena run into its snapshot buffer the first time
    /// the machine diverges.
    fn ensure_snapshot(&mut self, i: usize) {
        if !self.dirty[i] {
            let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
            self.snaps[i].clear();
            self.snaps[i].extend_from_slice(&self.arena[lo..hi]);
            self.dirty[i] = true;
        }
    }

    fn note_change(&mut self, i: usize) {
        self.fp_stale[i] = true;
        self.pending[i] += 1;
        self.pending_total += 1;
    }

    /// Machine `i`'s current piece content as a sorted slice.
    #[inline]
    fn piece_slice(&self, i: usize) -> &[Edge] {
        if self.dirty[i] {
            &self.snaps[i]
        } else {
            &self.arena[self.offsets[i]..self.offsets[i + 1]]
        }
    }

    /// Machine `i`'s subgraph as a zero-copy view (into the arena for clean
    /// machines, into the snapshot buffer for dirty ones).
    #[inline]
    pub fn piece(&self, i: usize) -> GraphView<'_> {
        GraphView::new_unchecked(self.n, self.piece_slice(i))
    }

    /// Views of every machine's current subgraph, in machine order.
    pub fn views(&self) -> Vec<GraphView<'_>> {
        (0..self.k()).map(|i| self.piece(i)).collect()
    }

    /// Current per-machine piece sizes, in machine order.
    pub fn piece_sizes(&self) -> Vec<usize> {
        (0..self.k()).map(|i| self.piece_slice(i).len()).collect()
    }

    /// Whether edge `e` is currently present.
    pub fn has_edge(&self, e: Edge) -> bool {
        if e.v as usize >= self.n {
            return false;
        }
        let machine = edge_machine(self.seed, self.k(), e);
        self.piece_slice(machine).binary_search(&e).is_ok()
    }

    /// Fingerprint of machine `i`'s current piece (see [`fingerprint_edges`]).
    ///
    /// Clean machines answer from the memoized value in `O(1)`; machines with
    /// pending journal ops re-fold their snapshot (`O(p)`).
    pub fn piece_fingerprint(&self, i: usize) -> u64 {
        if self.fp_stale[i] {
            fingerprint_edges(self.piece_slice(i))
        } else {
            self.fp[i]
        }
    }

    /// Fingerprints of every machine's current piece, in machine order.
    pub fn fingerprints(&self) -> Vec<u64> {
        (0..self.k()).map(|i| self.piece_fingerprint(i)).collect()
    }

    /// Compacts the journals back into one fresh machine-major arena if the
    /// pending-op volume has crossed the configured threshold. Returns
    /// whether a compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        if self.pending_total * self.compact_den >= self.m.max(1) * self.compact_num
            && self.pending_total > 0
        {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Unconditionally rebuilds the arena from the current pieces, clearing
    /// every journal; afterwards all machines are clean and every piece is
    /// once again a zero-copy arena slice.
    pub fn compact(&mut self) {
        let k = self.k();
        let mut offsets = vec![0usize; k + 1];
        for i in 0..k {
            offsets[i + 1] = offsets[i] + self.piece_slice(i).len();
        }
        let mut arena: Vec<Edge> = Vec::with_capacity(offsets[k]);
        for i in 0..k {
            arena.extend_from_slice(self.piece_slice(i));
        }
        self.arena = arena;
        self.offsets = offsets;
        for i in 0..k {
            self.snaps[i].clear();
            self.dirty[i] = false;
            if self.fp_stale[i] {
                self.fp[i] = fingerprint_edges(self.piece_slice(i));
                self.fp_stale[i] = false;
            }
            self.pending[i] = 0;
        }
        self.pending_total = 0;
    }

    /// The current edge set as an owned canonical [`Graph`] (sorted edge
    /// list). `O(m log m)`; meant for verification and baselines, not the
    /// serving path.
    pub fn current_graph(&self) -> Graph {
        let mut edges: Vec<Edge> = Vec::with_capacity(self.m);
        for i in 0..self.k() {
            edges.extend_from_slice(self.piece_slice(i));
        }
        edges.sort_unstable();
        Graph::from_edges_unchecked(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er::gnp;
    use crate::partition::PartitionedGraph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn placement_is_churn_stable_and_roughly_uniform() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for u in 0..200u32 {
            for v in (u + 1)..200u32 {
                let e = Edge::new(u, v);
                assert_eq!(edge_machine(7, k, e), edge_machine(7, k, e));
                counts[edge_machine(7, k, e)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let expected = total as f64 / k as f64;
        for &c in &counts {
            let ratio = c as f64 / expected;
            assert!(ratio > 0.8 && ratio < 1.2, "machine load {c} vs {expected}");
        }
        // Different seeds give different placements (for at least one edge).
        let moved = (0..100u32).any(|v| {
            edge_machine(1, k, Edge::new(v, v + 1)) != edge_machine(2, k, Edge::new(v, v + 1))
        });
        assert!(moved, "placement must depend on the seed");
    }

    #[test]
    fn fingerprint_is_order_and_length_sensitive() {
        let a = [Edge::new(0, 1), Edge::new(2, 3)];
        let b = [Edge::new(2, 3), Edge::new(0, 1)];
        assert_ne!(fingerprint_edges(&a), fingerprint_edges(&b));
        assert_ne!(fingerprint_edges(&a[..1]), fingerprint_edges(&a));
        assert_eq!(fingerprint_edges(&a), fingerprint_edges(&a));
        // Empty sequences still have a well-defined fingerprint.
        assert_eq!(fingerprint_edges([].iter()), fingerprint_edges([].iter()));
    }

    #[test]
    fn new_partition_matches_by_edge_hash_pieces() {
        let g = gnp(300, 0.04, &mut rng(3));
        let part = ChurnPartition::new(&g, 6, 42).unwrap();
        let batch = PartitionedGraph::by_edge_hash(&g, 6, 42).unwrap();
        assert_eq!(part.m(), g.m());
        for i in 0..6 {
            assert_eq!(part.piece(i).edges(), batch.piece(i).edges(), "piece {i}");
            assert_eq!(
                part.piece_fingerprint(i),
                fingerprint_edges(batch.piece(i).edges()),
                "fingerprint {i}"
            );
        }
    }

    /// The core soundness property behind coreset reuse: after arbitrary
    /// churn, every piece (edge sequence *and* fingerprint) equals the piece
    /// of a from-scratch hash partition of the current graph — and clean
    /// machines' fingerprints never move.
    #[test]
    fn churned_pieces_equal_from_scratch_partition() {
        let g = gnp(200, 0.05, &mut rng(4));
        let k = 5;
        let seed = 9;
        let mut part = ChurnPartition::new(&g, k, seed).unwrap();
        let before_fp = part.fingerprints();
        let mut r = rng(5);
        let mut edges: Vec<Edge> = g.edges().to_vec();
        for step in 0..400 {
            if step % 3 != 0 || edges.is_empty() {
                let u = r.gen_range(0..200u32);
                let v = r.gen_range(0..200u32);
                if u == v {
                    continue;
                }
                let e = Edge::new(u, v);
                let changed = part.apply(ChurnOp::Insert(e)).unwrap();
                assert_eq!(changed, !edges.contains(&e));
                if changed {
                    edges.push(e);
                }
            } else {
                let idx = r.gen_range(0..edges.len());
                let e = edges.swap_remove(idx);
                assert!(part.apply(ChurnOp::Delete(e)).unwrap());
                assert!(!part.apply(ChurnOp::Delete(e)).unwrap(), "double delete");
            }
        }
        let current = Graph::from_pairs(200, edges.iter().map(|e| (e.u, e.v))).unwrap();
        assert_eq!(part.m(), current.m());
        let scratch = PartitionedGraph::by_edge_hash(&current, k, seed).unwrap();
        for (i, fp_before) in before_fp.iter().enumerate() {
            assert_eq!(part.piece(i).edges(), scratch.piece(i).edges(), "piece {i}");
            assert_eq!(
                part.piece_fingerprint(i),
                fingerprint_edges(scratch.piece(i).edges())
            );
            if !part.is_dirty(i) {
                assert_eq!(part.piece_fingerprint(i), *fp_before);
            }
        }
        // Compaction preserves all pieces and resets the journals.
        let fps = part.fingerprints();
        part.compact();
        assert_eq!(part.pending_ops(), 0);
        assert_eq!(part.dirty_count(), 0);
        assert_eq!(part.fingerprints(), fps);
        for i in 0..k {
            assert_eq!(part.piece(i).edges(), scratch.piece(i).edges());
        }
        assert_eq!(part.current_graph().edges(), current.edges());
    }

    #[test]
    fn insert_then_delete_restores_the_original_fingerprint() {
        let g = gnp(80, 0.1, &mut rng(6));
        let mut part = ChurnPartition::new(&g, 4, 1).unwrap();
        let fps = part.fingerprints();
        let e = (0..80u32)
            .flat_map(|u| ((u + 1)..80).map(move |v| Edge::new(u, v)))
            .find(|e| !g.has_edge(e.u, e.v))
            .unwrap();
        assert!(part.apply(ChurnOp::Insert(e)).unwrap());
        let machine = edge_machine(1, 4, e);
        assert_ne!(part.piece_fingerprint(machine), fps[machine]);
        assert!(part.apply(ChurnOp::Delete(e)).unwrap());
        // The machine is still flagged dirty, but its content — and hence the
        // fingerprint the coreset cache keys on — is back to the original.
        assert!(part.is_dirty(machine));
        assert_eq!(part.fingerprints(), fps);
    }

    #[test]
    fn threshold_compaction_triggers() {
        let g = gnp(60, 0.1, &mut rng(7));
        let mut part = ChurnPartition::new(&g, 3, 2)
            .unwrap()
            .with_compact_threshold(1, 100)
            .unwrap();
        let mut applied = 0;
        let mut compacted = false;
        for u in 0..60u32 {
            for v in (u + 1)..60 {
                if !part.has_edge(Edge::new(u, v)) {
                    part.apply(ChurnOp::Insert(Edge::new(u, v))).unwrap();
                    applied += 1;
                    if part.maybe_compact() {
                        compacted = true;
                    }
                }
                if compacted {
                    break;
                }
            }
            if compacted {
                break;
            }
        }
        assert!(
            compacted,
            "threshold 1/100 must compact after {applied} ops"
        );
        assert_eq!(part.pending_ops(), 0);
    }

    #[test]
    fn out_of_range_and_zero_k_are_rejected() {
        let g = gnp(10, 0.3, &mut rng(8));
        assert!(matches!(
            ChurnPartition::new(&g, 0, 0),
            Err(GraphError::InvalidMachineCount { k: 0 })
        ));
        let mut part = ChurnPartition::new(&g, 2, 0).unwrap();
        assert!(matches!(
            part.apply(ChurnOp::Insert(Edge::new(3, 99))),
            Err(GraphError::VertexOutOfRange { vertex: 99, .. })
        ));
        assert!(!part.has_edge(Edge::new(3, 99)));
    }
}
