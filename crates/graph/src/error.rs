//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the matching/vertex-cover model of
    /// the paper is defined on simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// A bipartite edge referenced a left vertex outside `0..left_n`.
    LeftVertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of left vertices.
        left_n: usize,
    },
    /// A bipartite edge referenced a right vertex outside `0..right_n`.
    RightVertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of right vertices.
        right_n: usize,
    },
    /// The number of machines `k` must be at least one.
    InvalidMachineCount {
        /// The requested number of machines.
        k: usize,
    },
    /// A generator received parameters it cannot satisfy
    /// (for example a probability outside `[0, 1]`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An I/O operation on an edge-arena file failed. The underlying
    /// `std::io::Error` is rendered into `context` so the variant stays
    /// `Clone + PartialEq + Eq` like the rest of the enum.
    ArenaIo {
        /// What was being done, plus the rendered I/O error.
        context: String,
    },
    /// An arena file did not start with the `RCARENA1` magic bytes — it is
    /// not an edge-arena file at all (or is empty/garbage).
    ArenaBadMagic {
        /// The first bytes actually found (zero-padded if the file was
        /// shorter than the magic).
        found: [u8; 8],
    },
    /// An arena file carries a format version this build does not understand.
    ArenaBadVersion {
        /// The version recorded in the file header.
        found: u32,
    },
    /// An arena file is shorter than its own header/segment table says it
    /// must be — the tail was truncated in transit or on disk.
    ArenaTruncated {
        /// The byte length the header implies.
        expected_bytes: u64,
        /// The byte length actually present.
        found_bytes: u64,
    },
    /// An arena file's segment table is internally inconsistent (offsets not
    /// starting at zero, segments not tiling the record section, totals
    /// disagreeing with the header), or a decoded record violates the graph
    /// invariants the header promises.
    ArenaCorrupt {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A version-2 arena segment's decoded bytes do not hash to the CRC32
    /// recorded in the file's checksum table — the segment was corrupted on
    /// disk or in transit. Without the checksum this would have been
    /// silently-wrong edges; with it, the error is typed and carries the
    /// segment (machine) index so the protocol layer can retry or degrade.
    ArenaChecksumMismatch {
        /// The segment (machine index) whose bytes failed verification.
        segment: usize,
        /// The CRC32 recorded in the file's checksum table.
        expected: u32,
        /// The CRC32 actually computed over the segment's record bytes.
        found: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::LeftVertexOutOfRange { vertex, left_n } => {
                write!(
                    f,
                    "left vertex {vertex} out of range (left side has {left_n} vertices)"
                )
            }
            GraphError::RightVertexOutOfRange { vertex, right_n } => {
                write!(
                    f,
                    "right vertex {vertex} out of range (right side has {right_n} vertices)"
                )
            }
            GraphError::InvalidMachineCount { k } => {
                write!(f, "number of machines k={k} must be at least 1")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::ArenaIo { context } => {
                write!(f, "arena file I/O error: {context}")
            }
            GraphError::ArenaBadMagic { found } => {
                write!(f, "not an edge-arena file: bad magic {found:?}")
            }
            GraphError::ArenaBadVersion { found } => {
                write!(f, "unsupported arena format version {found}")
            }
            GraphError::ArenaTruncated {
                expected_bytes,
                found_bytes,
            } => {
                write!(
                    f,
                    "arena file truncated: header implies {expected_bytes} bytes, found {found_bytes}"
                )
            }
            GraphError::ArenaCorrupt { reason } => {
                write!(f, "corrupt arena file: {reason}")
            }
            GraphError::ArenaChecksumMismatch {
                segment,
                expected,
                found,
            } => {
                write!(
                    f,
                    "arena segment {segment} failed checksum verification: \
                     recorded crc32 {expected:#010x}, computed {found:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_quantities() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains('3'));

        let e = GraphError::InvalidMachineCount { k: 0 };
        assert!(e.to_string().contains("k=0"));

        let e = GraphError::InvalidParameter {
            reason: "p must be in [0,1]".into(),
        };
        assert!(e.to_string().contains("p must be in [0,1]"));

        let e = GraphError::ArenaIo {
            context: "opening /tmp/x: not found".into(),
        };
        assert!(e.to_string().contains("opening /tmp/x"));

        let e = GraphError::ArenaBadMagic {
            found: *b"NOTARENA",
        };
        assert!(e.to_string().contains("bad magic"));

        let e = GraphError::ArenaBadVersion { found: 9 };
        assert!(e.to_string().contains('9'));

        let e = GraphError::ArenaTruncated {
            expected_bytes: 100,
            found_bytes: 60,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("60"));

        let e = GraphError::ArenaCorrupt {
            reason: "segment 2 overlaps segment 3".into(),
        };
        assert!(e.to_string().contains("segment 2 overlaps"));

        let e = GraphError::ArenaChecksumMismatch {
            segment: 4,
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
        };
        assert!(e.to_string().contains("segment 4"));
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(e.to_string().contains("0x0badf00d"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 2 }
        );
    }
}
