//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the matching/vertex-cover model of
    /// the paper is defined on simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// A bipartite edge referenced a left vertex outside `0..left_n`.
    LeftVertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of left vertices.
        left_n: usize,
    },
    /// A bipartite edge referenced a right vertex outside `0..right_n`.
    RightVertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of right vertices.
        right_n: usize,
    },
    /// The number of machines `k` must be at least one.
    InvalidMachineCount {
        /// The requested number of machines.
        k: usize,
    },
    /// A generator received parameters it cannot satisfy
    /// (for example a probability outside `[0, 1]`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::LeftVertexOutOfRange { vertex, left_n } => {
                write!(
                    f,
                    "left vertex {vertex} out of range (left side has {left_n} vertices)"
                )
            }
            GraphError::RightVertexOutOfRange { vertex, right_n } => {
                write!(
                    f,
                    "right vertex {vertex} out of range (right side has {right_n} vertices)"
                )
            }
            GraphError::InvalidMachineCount { k } => {
                write!(f, "number of machines k={k} must be at least 1")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_quantities() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains('3'));

        let e = GraphError::InvalidMachineCount { k: 0 };
        assert!(e.to_string().contains("k=0"));

        let e = GraphError::InvalidParameter {
            reason: "p must be in [0,1]".into(),
        };
        assert!(e.to_string().contains("p must be in [0,1]"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 2 }
        );
    }
}
