//! Property-based tests for the graph substrate: representations, generators
//! and the random k-partitioning that defines the paper's model.

use graph::gen::bipartite::{near_regular_bipartite, random_bipartite};
use graph::gen::er::{gnm, gnp};
use graph::gen::structured::{complete, cycle, path, star_forest};
use graph::partition::{partition_bipartite, EdgePartition, PartitionStrategy, PartitionedGraph};
use graph::stats::{connected_components, degree_histogram, GraphStats};
use graph::{Csr, Edge, Graph, GraphRef, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

fn arb_gnm() -> impl Strategy<Value = Graph> {
    (2usize..150, any::<u64>(), 0.0f64..1.0).prop_map(|(n, seed, density)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        let m = ((max_m as f64) * density * 0.2) as usize;
        gnm(n, m.min(max_m), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated graph satisfies the simple-graph invariants.
    #[test]
    fn generated_graphs_are_simple(g in arb_gnm()) {
        let mut seen = HashSet::new();
        for e in g.edges() {
            prop_assert!(e.u < e.v, "edges are canonical and loop-free");
            prop_assert!((e.v as usize) < g.n());
            prop_assert!(seen.insert(*e), "no duplicate edges");
        }
    }

    /// Degree sums, histograms and stats are mutually consistent.
    #[test]
    fn degree_accounting_is_consistent(g in arb_gnm()) {
        let degrees = g.degrees();
        prop_assert_eq!(degrees.iter().sum::<usize>(), 2 * g.m());
        let hist = degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.n());
        let weighted_sum: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        prop_assert_eq!(weighted_sum, 2 * g.m());
        let stats = GraphStats::of(&g);
        prop_assert_eq!(stats.max_degree, g.max_degree());
        prop_assert_eq!(stats.isolated, g.isolated_count());
    }

    /// The CSR view agrees with the adjacency view for every vertex.
    #[test]
    fn csr_and_adjacency_agree(g in arb_gnm()) {
        let csr = Csr::from_graph(&g);
        let adj = g.adjacency();
        prop_assert_eq!(csr.n(), g.n());
        prop_assert_eq!(csr.m(), g.m());
        for v in 0..g.n() as u32 {
            prop_assert_eq!(csr.neighbors(v), adj.neighbors(v));
        }
    }

    /// Random, round-robin and adversarial partitions all preserve the edge
    /// multiset exactly.
    #[test]
    fn partitions_preserve_edges(
        g in arb_gnm(),
        k in 1usize..10,
        seed in any::<u64>(),
        strategy in prop_oneof![
            Just(PartitionStrategy::Random),
            Just(PartitionStrategy::RoundRobin),
            Just(PartitionStrategy::Adversarial),
        ],
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::new(&g, k, strategy, &mut rng).unwrap();
        prop_assert_eq!(part.k(), k);
        prop_assert_eq!(part.total_edges(), g.m());
        let mut all: Vec<Edge> = part.pieces().iter().flat_map(|p| p.edges().iter().copied()).collect();
        all.sort();
        let mut original: Vec<Edge> = g.edges().to_vec();
        original.sort();
        prop_assert_eq!(all, original);
    }

    /// The zero-copy arena partition: under every strategy, the pieces are a
    /// zero-copy reslicing of one edge permutation that reunites to the exact
    /// original edge multiset, and each view is byte-identical to the
    /// materialized owned piece.
    #[test]
    fn arena_partition_reunites_to_the_exact_multiset(
        g in arb_gnm(),
        k in 1usize..10,
        seed in any::<u64>(),
        strategy in prop_oneof![
            Just(PartitionStrategy::Random),
            Just(PartitionStrategy::RoundRobin),
            Just(PartitionStrategy::Adversarial),
        ],
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let arena = PartitionedGraph::new(&g, k, strategy, &mut rng).unwrap();
        prop_assert_eq!(arena.k(), k);
        prop_assert_eq!(arena.m(), g.m());
        prop_assert_eq!(arena.piece_sizes().iter().sum::<usize>(), g.m());

        // Reuniting the arena recovers the exact original edge multiset.
        let mut reunited: Vec<Edge> = arena.reunite().edges().to_vec();
        reunited.sort_unstable();
        let mut original: Vec<Edge> = g.edges().to_vec();
        original.sort_unstable();
        prop_assert_eq!(reunited, original);

        // Views and materialized owned pieces agree edge-for-edge, and the
        // materialized partition reunites to the same multiset.
        let owned = arena.materialize();
        for (i, piece) in owned.pieces().iter().enumerate() {
            prop_assert_eq!(arena.piece(i).edges(), piece.edges());
            prop_assert_eq!(arena.piece(i).n(), piece.n());
        }
        let mut owned_reunited: Vec<Edge> = owned.reunite().edges().to_vec();
        owned_reunited.sort_unstable();
        let mut original2: Vec<Edge> = g.edges().to_vec();
        original2.sort_unstable();
        prop_assert_eq!(owned_reunited, original2);
    }

    /// A graph's view exposes exactly the same structure as the graph itself.
    #[test]
    fn view_mirrors_owned_graph(g in arb_gnm()) {
        let v = g.as_view();
        prop_assert_eq!(v.n(), g.n());
        prop_assert_eq!(v.m(), g.m());
        prop_assert_eq!(v.edges(), g.edges());
        prop_assert_eq!(GraphRef::degrees(&v), g.degrees());
        let csr_owned = Csr::from_graph(&g);
        let csr_view = Csr::from_ref(&v);
        for x in 0..g.n() as u32 {
            prop_assert_eq!(csr_owned.neighbors(x), csr_view.neighbors(x));
        }
        prop_assert_eq!(v.to_graph(), g.clone());
    }

    /// Bipartite partitioning preserves edges and sides.
    #[test]
    fn bipartite_partition_preserves_edges(
        left in 1usize..60,
        right in 1usize..60,
        p in 0.0f64..0.3,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_bipartite(left, right, p, &mut rng);
        let pieces = partition_bipartite(&g, k, PartitionStrategy::Random, &mut rng).unwrap();
        prop_assert_eq!(pieces.iter().map(|p| p.m()).sum::<usize>(), g.m());
        for piece in &pieces {
            prop_assert_eq!(piece.left_n(), left);
            prop_assert_eq!(piece.right_n(), right);
        }
    }

    /// `gnp` and `gnm` stay within their declared vertex budget and edge count.
    #[test]
    fn generator_contracts(n in 2usize..120, seed in any::<u64>(), p in 0.0f64..0.2) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g1 = gnp(n, p, &mut rng);
        prop_assert_eq!(g1.n(), n);
        prop_assert!(g1.m() <= n * (n - 1) / 2);

        let m = (n * (n - 1) / 2) / 3;
        let g2 = gnm(n, m, &mut rng);
        prop_assert_eq!(g2.m(), m);
    }

    /// Bipartite conversion to a flat graph preserves edge count and can be
    /// interpreted back.
    #[test]
    fn bipartite_flattening_round_trips(left in 1usize..50, right in 1usize..50, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bg = random_bipartite(left, right, p, &mut rng);
        let flat = bg.to_graph();
        prop_assert_eq!(flat.m(), bg.m());
        prop_assert_eq!(flat.n(), left + right);
        for e in flat.edges() {
            let (side_u, _) = bg.split_vertex(e.u);
            let (side_v, _) = bg.split_vertex(e.v);
            prop_assert_ne!(side_u, side_v, "flattened edges must cross the bipartition");
        }
    }

    /// Near-regular bipartite graphs have exactly the requested left degree.
    #[test]
    fn near_regular_left_degrees(n in 2usize..60, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = (n / 3).max(1);
        let g = near_regular_bipartite(n, d, &mut rng);
        prop_assert!(g.left_degrees().iter().all(|&x| x == d));
        prop_assert_eq!(g.m(), n * d);
    }

    /// Weighted graphs: class decomposition partitions the edges and the
    /// unweighted projection preserves structure.
    #[test]
    fn weighted_graph_invariants(n in 2usize..60, seed in any::<u64>(), m in 0usize..150) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let triples: Vec<(u32, u32, f64)> = (0..m)
            .filter_map(|_| {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u == v { None } else { Some((u, v, rng.gen_range(0.1..500.0))) }
            })
            .collect();
        let g = WeightedGraph::from_triples(n, triples).unwrap();
        let classes = g.weight_classes(2.0);
        let total: usize = classes.iter().map(|(_, cg)| cg.m()).sum();
        prop_assert_eq!(total, g.m());
        prop_assert_eq!(g.to_unweighted().m(), g.m());
        prop_assert!(g.total_weight() >= 0.0);
    }

    /// Edge-list serialisation round-trips the graph exactly up to the
    /// canonical edge order (`from_pairs` stores edges sorted, so a reparsed
    /// graph is the canonicalized form of the original).
    #[test]
    fn io_round_trip(g in arb_gnm()) {
        let text = graph::io::to_edge_list(&g);
        let back = graph::io::from_edge_list(&text).unwrap();
        prop_assert_eq!(back.n(), g.n());
        let mut original: Vec<Edge> = g.edges().to_vec();
        original.sort_unstable();
        prop_assert_eq!(back.edges(), original.as_slice());
        // A canonical graph round-trips exactly.
        let again = graph::io::from_edge_list(&graph::io::to_edge_list(&back)).unwrap();
        prop_assert_eq!(again, back);
    }
}

#[test]
fn structured_graph_component_counts() {
    assert_eq!(connected_components(&path(10)), 1);
    assert_eq!(connected_components(&cycle(10)), 1);
    assert_eq!(connected_components(&star_forest(7, 3)), 7);
    assert_eq!(connected_components(&complete(5)), 1);
}
