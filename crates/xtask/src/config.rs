//! Parser for `crates/xtask/hotpaths.toml` — the checked-in list of
//! allocation-free hot-path functions.
//!
//! The workspace is fully offline (no crates.io), so this is a hand-rolled
//! reader for the tiny TOML subset the config needs:
//!
//! ```toml
//! [[hotpath]]
//! file = "crates/matching/src/engine.rs"
//! functions = ["solve_inner"]
//! reason = "why this is a hot path"
//! ```
//!
//! Unknown keys, unterminated strings, and structural mistakes are reported
//! as errors rather than ignored — a silently dropped entry would quietly
//! stop linting a hot path.

use std::collections::BTreeMap;

/// One `[[hotpath]]` entry: the functions of `file` whose bodies the
/// allocation lint patrols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPath {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Function names (as written after `fn`) to patrol in that file.
    pub functions: Vec<String>,
    /// Human-readable justification; required so the config stays honest.
    pub reason: String,
}

/// The parsed hot-path configuration, keyed by file path.
#[derive(Debug, Clone, Default)]
pub struct HotPathConfig {
    /// `file -> function names` to patrol.
    pub by_file: BTreeMap<String, Vec<String>>,
}

impl HotPathConfig {
    /// Builds the lookup table from parsed entries.
    pub fn from_entries(entries: Vec<HotPath>) -> Self {
        let mut by_file: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for e in entries {
            by_file.entry(e.file).or_default().extend(e.functions);
        }
        Self { by_file }
    }

    /// The functions to patrol in `file`, if any.
    pub fn functions_for(&self, file: &str) -> Option<&[String]> {
        self.by_file.get(file).map(Vec::as_slice)
    }
}

/// Parses the `hotpaths.toml` text into entries. Returns a descriptive error
/// (with a 1-based line number) on anything outside the supported subset.
pub fn parse_hotpaths(text: &str) -> Result<Vec<HotPath>, String> {
    let mut entries: Vec<HotPath> = Vec::new();
    let mut current: Option<HotPath> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[hotpath]]" {
            if let Some(done) = current.take() {
                entries.push(validated(done, lineno)?);
            }
            current = Some(HotPath::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "hotpaths.toml:{lineno}: unsupported table `{line}` (only [[hotpath]] entries are allowed)"
            ));
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            format!("hotpaths.toml:{lineno}: expected `key = value`, got `{line}`")
        })?;
        let entry = current.as_mut().ok_or_else(|| {
            format!(
                "hotpaths.toml:{lineno}: `{}` outside a [[hotpath]] entry",
                key.trim()
            )
        })?;
        match key.trim() {
            "file" => entry.file = parse_toml_string(value.trim(), lineno)?,
            "functions" => entry.functions = parse_toml_string_array(value.trim(), lineno)?,
            "reason" => entry.reason = parse_toml_string(value.trim(), lineno)?,
            other => {
                return Err(format!(
                    "hotpaths.toml:{lineno}: unknown key `{other}` (expected file / functions / reason)"
                ))
            }
        }
    }
    if let Some(done) = current.take() {
        let last_line = text.lines().count();
        entries.push(validated(done, last_line)?);
    }
    Ok(entries)
}

/// Checks that a finished entry carries every required field.
fn validated(entry: HotPath, lineno: usize) -> Result<HotPath, String> {
    if entry.file.is_empty() {
        return Err(format!(
            "hotpaths.toml:{lineno}: [[hotpath]] entry missing `file`"
        ));
    }
    if entry.functions.is_empty() {
        return Err(format!(
            "hotpaths.toml:{lineno}: [[hotpath]] for `{}` lists no functions",
            entry.file
        ));
    }
    if entry.reason.is_empty() {
        return Err(format!(
            "hotpaths.toml:{lineno}: [[hotpath]] for `{}` missing `reason` (say why it is a hot path)",
            entry.file
        ));
    }
    Ok(entry)
}

/// Drops a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a `"quoted"` TOML string value.
fn parse_toml_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| {
            format!("hotpaths.toml:{lineno}: expected a quoted string, got `{value}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "hotpaths.toml:{lineno}: embedded quotes are not supported"
        ));
    }
    Ok(inner.to_string())
}

/// Parses a single-line `["a", "b"]` TOML array of strings.
fn parse_toml_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            format!("hotpaths.toml:{lineno}: expected a [\"...\"] array, got `{value}`")
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_toml_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_builds_lookup() {
        let text = r#"
# hot paths
[[hotpath]]
file = "crates/matching/src/engine.rs" # the solver
functions = ["solve_inner", "other"]
reason = "inner loop"

[[hotpath]]
file = "crates/vertexcover/src/engine.rs"
functions = ["peel_with_thresholds"]
reason = "bucket rounds"
"#;
        let entries = parse_hotpaths(text).unwrap();
        assert_eq!(entries.len(), 2);
        let cfg = HotPathConfig::from_entries(entries);
        assert_eq!(
            cfg.functions_for("crates/matching/src/engine.rs").unwrap(),
            &["solve_inner".to_string(), "other".to_string()][..]
        );
        assert!(cfg.functions_for("crates/graph/src/csr.rs").is_none());
    }

    #[test]
    fn missing_fields_and_unknown_keys_error() {
        assert!(parse_hotpaths("[[hotpath]]\nfile = \"a.rs\"\n")
            .unwrap_err()
            .contains("no functions"));
        assert!(
            parse_hotpaths("[[hotpath]]\nfile = \"a.rs\"\nfunctions = [\"f\"]\n")
                .unwrap_err()
                .contains("missing `reason`")
        );
        assert!(parse_hotpaths("[[hotpath]]\nbogus = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse_hotpaths("file = \"a.rs\"\n")
            .unwrap_err()
            .contains("outside a [[hotpath]]"));
        assert!(parse_hotpaths("[other]\n")
            .unwrap_err()
            .contains("unsupported table"));
    }
}
