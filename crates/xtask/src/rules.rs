//! The repo-specific invariant rules the linter enforces.
//!
//! Every rule operates on the token stream of [`crate::lexer::lex`] plus a
//! little structural bookkeeping (`#[cfg(test)]` regions, function spans,
//! attribute lines). Diagnostics carry the rule name so a per-line
//! `// xtask: allow(<rule>)` pragma can suppress exactly that rule.
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `hash-collections` | protocol/solver crates | no `HashMap`/`HashSet` — iteration order is nondeterministic and the protocol's only sanctioned randomness is the partition RNG stream |
//! | `nondeterminism` | everywhere except `crates/bench` | no `thread_rng` / `from_entropy` / `SystemTime` / `Instant::now` — ambient entropy and wall-clock must never reach an answer |
//! | `env-threads` | everywhere walked | only `vendor/rayon` may read `RC_THREADS` / `RAYON_NUM_THREADS` — one resolution point keeps thread-count semantics single-sourced |
//! | `hot-path-alloc` | functions in `hotpaths.toml` | no `vec![` / `Vec::new` / `.to_vec()` / `.clone()` / `collect::<Vec` in engine inner loops |
//! | `missing-docs` | `graph` / `coresets` / `distsim` / `dynamic` | every `pub fn` carries a doc comment |
//! | `error-hygiene` | `graph` / `distsim` / `dynamic` | no `.unwrap()` / `.expect(` / `panic!` in library code — fallible paths surface typed `GraphError`/protocol errors so the fault-tolerant runtime can retry or degrade instead of aborting |
//!
//! Test code (`#[cfg(test)]` modules, `tests/` directories) is exempt from
//! `hash-collections`, `hot-path-alloc`, `missing-docs` and `error-hygiene`:
//! iteration order in a test can't reach a protocol output, tests allocate
//! freely, and asserting via unwrap/panic is what tests are for. The
//! nondeterminism and env rules apply to tests too — a test that consults
//! wall-clock or re-reads `RC_THREADS` is exactly as suspect as library code
//! that does.

use crate::config::HotPathConfig;
use crate::lexer::{LexedFile, TokKind, Token};
use std::collections::BTreeSet;
use std::fmt;

/// One linter finding, pointing at a workspace-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The rule that fired (pragma key).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace-relative
/// path. See the module docs for the scoping rationale.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// `hash-collections` applies (protocol/solver crate source).
    pub protocol: bool,
    /// `nondeterminism` applies (everything except `crates/bench`).
    pub no_ambient_entropy: bool,
    /// `missing-docs` applies (`graph` / `coresets` / `distsim` source).
    pub doc_coverage: bool,
    /// `error-hygiene` applies (`graph` / `distsim` source).
    pub error_hygiene: bool,
    /// The file sits under a `tests/` directory (integration tests).
    pub test_file: bool,
}

/// Classifies a workspace-relative path (forward slashes) into rule scopes.
pub fn classify(rel_path: &str) -> FileScope {
    let test_file = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
    let in_crate_src = |krate: &str| rel_path.starts_with(&format!("crates/{krate}/src/"));
    let protocol = !test_file
        && (rel_path.starts_with("src/")
            || [
                "graph",
                "matching",
                "vertexcover",
                "coresets",
                "distsim",
                "dynamic",
            ]
            .iter()
            .any(|k| in_crate_src(k)));
    let no_ambient_entropy = !rel_path.starts_with("crates/bench/");
    let doc_coverage = !test_file
        && ["graph", "coresets", "distsim", "dynamic"]
            .iter()
            .any(|k| in_crate_src(k));
    let error_hygiene = !test_file
        && ["graph", "distsim", "dynamic"]
            .iter()
            .any(|k| in_crate_src(k));
    FileScope {
        protocol,
        no_ambient_entropy,
        doc_coverage,
        error_hygiene,
        test_file,
    }
}

/// Runs every token-level rule on one lexed file.
pub fn lint_tokens(rel_path: &str, lexed: &LexedFile, hotpaths: &HotPathConfig) -> Vec<Diagnostic> {
    let scope = classify(rel_path);
    let toks = &lexed.tokens;
    let test_spans = cfg_test_spans(toks);
    let in_test = |i: usize| test_spans.iter().any(|&(a, b)| i >= a && i <= b);
    let mut out = Vec::new();
    let mut push = |lexed: &LexedFile, rule: &'static str, line: usize, message: String| {
        if !lexed.allows(rule, line) {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    // --- hash-collections -------------------------------------------------
    if scope.protocol {
        for (i, t) in toks.iter().enumerate() {
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && !in_test(i) {
                push(
                    lexed,
                    "hash-collections",
                    t.line,
                    format!(
                        "`{}` in a protocol/solver crate: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or a sorted Vec, or add \
                         `// xtask: allow(hash-collections)` with a justification",
                        t.text
                    ),
                );
            }
        }
    }

    // --- nondeterminism ---------------------------------------------------
    if scope.no_ambient_entropy {
        for (i, t) in toks.iter().enumerate() {
            let hit = if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
                Some(t.text.clone())
            } else if t.is_ident("SystemTime") {
                Some("SystemTime".to_string())
            } else if t.is_ident("Instant")
                && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
            {
                Some("Instant::now".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                push(
                    lexed,
                    "nondeterminism",
                    t.line,
                    format!(
                        "`{what}` outside crates/bench: the random-partition RNG stream must \
                         be the only source of randomness (PAPER.md §2); derive from the run \
                         seed instead"
                    ),
                );
            }
        }
    }

    // --- env-threads ------------------------------------------------------
    if !rel_path.starts_with("vendor/rayon/") {
        for (i, t) in toks.iter().enumerate() {
            if (t.is_ident("var") || t.is_ident("var_os"))
                && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            {
                if let Some(s) = toks.get(i + 2) {
                    if s.kind == TokKind::Str
                        && (s.text == "RC_THREADS" || s.text == "RAYON_NUM_THREADS")
                    {
                        push(
                            lexed,
                            "env-threads",
                            t.line,
                            format!(
                                "reading `{}` outside vendor/rayon: thread-count resolution \
                                 must stay single-sourced in the vendored backend",
                                s.text
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- hot-path-alloc ---------------------------------------------------
    if let Some(functions) = hotpaths.functions_for(rel_path) {
        let spans = fn_spans(toks);
        let watched: Vec<&(String, usize, usize)> = spans
            .iter()
            .filter(|(name, _, _)| functions.iter().any(|f| f == name))
            .collect();
        for &&(ref name, start, end) in &watched {
            for i in start..=end.min(toks.len().saturating_sub(1)) {
                if in_test(i) {
                    continue;
                }
                if let Some(what) = alloc_pattern_at(toks, i) {
                    push(
                        lexed,
                        "hot-path-alloc",
                        toks[i].line,
                        format!(
                            "`{what}` inside hot-path fn `{name}` (hotpaths.toml): engine \
                             inner loops must reuse workspace buffers; justify with \
                             `// xtask: allow(hot-path-alloc)` if the allocation is the output"
                        ),
                    );
                }
            }
        }
        // A function listed in the config but absent from the file is config
        // drift — report it so renames keep the lint honest.
        for f in functions {
            if !spans.iter().any(|(name, _, _)| name == f) {
                push(
                    lexed,
                    "hot-path-alloc",
                    1,
                    format!("hotpaths.toml lists fn `{f}` but {rel_path} has no such function"),
                );
            }
        }
    }

    // --- error-hygiene ----------------------------------------------------
    if scope.error_hygiene {
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) {
                continue;
            }
            let hit = if t.is_punct('.')
                && matches!(toks.get(i + 1), Some(n) if n.is_ident("unwrap"))
                && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
            {
                Some((".unwrap()", toks[i + 1].line))
            } else if t.is_punct('.')
                && matches!(toks.get(i + 1), Some(n) if n.is_ident("expect"))
                && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
            {
                Some((".expect(", toks[i + 1].line))
            } else if t.is_ident("panic") && matches!(toks.get(i + 1), Some(p) if p.is_punct('!')) {
                Some(("panic!", t.line))
            } else {
                None
            };
            if let Some((what, line)) = hit {
                push(
                    lexed,
                    "error-hygiene",
                    line,
                    format!(
                        "`{what}` in graph/distsim/dynamic library code: fallible paths must \
                         surface typed errors so the fault-tolerant runtime can retry \
                         or degrade; justify a documented invariant with \
                         `// xtask: allow(error-hygiene)`"
                    ),
                );
            }
        }
    }

    // --- missing-docs -----------------------------------------------------
    if scope.doc_coverage {
        let attrs = attr_lines(toks);
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("pub") || in_test(i) {
                continue;
            }
            // `pub(crate)` & friends are internal API: skip.
            if matches!(toks.get(i + 1), Some(p) if p.is_punct('(')) {
                continue;
            }
            // Accept `pub fn`, `pub const fn`, `pub async fn`, `pub unsafe fn`.
            let mut j = i + 1;
            while matches!(toks.get(j), Some(k) if k.is_ident("const") || k.is_ident("async") || k.is_ident("unsafe"))
            {
                j += 1;
            }
            if !matches!(toks.get(j), Some(k) if k.is_ident("fn")) {
                continue;
            }
            let name = toks
                .get(j + 1)
                .map(|n| n.text.clone())
                .unwrap_or_else(|| "?".to_string());
            // Walk upward over attribute lines to the expected doc line.
            let mut l = t.line.saturating_sub(1);
            while l > 0 && attrs.contains(&l) {
                l -= 1;
            }
            if !lexed.doc_lines.contains(&l) {
                push(
                    lexed,
                    "missing-docs",
                    t.line,
                    format!("`pub fn {name}` has no doc comment (/// required in graph/coresets/distsim/dynamic)"),
                );
            }
        }
    }

    out
}

/// Returns the alloc-lint pattern starting at token `i`, if any.
fn alloc_pattern_at(toks: &[Token], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.is_ident("vec") && matches!(toks.get(i + 1), Some(p) if p.is_punct('!')) {
        return Some("vec![");
    }
    if t.is_ident("Vec")
        && matches!(toks.get(i + 1), Some(p) if p.is_punct(':'))
        && matches!(toks.get(i + 2), Some(p) if p.is_punct(':'))
        && matches!(toks.get(i + 3), Some(n) if n.is_ident("new"))
    {
        return Some("Vec::new");
    }
    if t.is_punct('.') {
        if matches!(toks.get(i + 1), Some(n) if n.is_ident("to_vec")) {
            return Some(".to_vec()");
        }
        if matches!(toks.get(i + 1), Some(n) if n.is_ident("clone"))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
        {
            return Some(".clone()");
        }
    }
    if t.is_ident("collect")
        && matches!(toks.get(i + 1), Some(p) if p.is_punct(':'))
        && matches!(toks.get(i + 2), Some(p) if p.is_punct(':'))
        && matches!(toks.get(i + 3), Some(p) if p.is_punct('<'))
        && matches!(toks.get(i + 4), Some(n) if n.is_ident("Vec"))
    {
        return Some("collect::<Vec<_>>");
    }
    None
}

/// Token-index spans (inclusive) covered by `#[cfg(test)]` items.
fn cfg_test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('['))
            && matches!(toks.get(i + 2), Some(c) if c.is_ident("cfg"))
            && matches!(toks.get(i + 3), Some(p) if p.is_punct('('))
            && matches!(toks.get(i + 4), Some(t) if t.is_ident("test"))
        {
            let start = i;
            // Skip to the end of this attribute, then over any further
            // attributes, then over the annotated item.
            let mut j = skip_bracketed(toks, i + 1, '[', ']');
            loop {
                if toks.get(j).is_some_and(|t| t.is_punct('#'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = skip_bracketed(toks, j + 1, '[', ']');
                } else {
                    break;
                }
            }
            // The item body: first `{ ... }` block, or a `;`-terminated item.
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                j = skip_bracketed(toks, j, '{', '}');
            }
            spans.push((start, j.saturating_sub(1).max(start)));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Given `toks[open_idx]` == the opening bracket, returns the index one past
/// its matching close bracket.
fn skip_bracketed(toks: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// `(fn name, body start token, body end token)` for every `fn` in the file,
/// including nested ones (outer spans simply contain inner ones).
fn fn_spans(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // closures / fn pointers: `fn(` has no name
        }
        // Find the body `{` (or a `;` for trait/extern declarations). Angle
        // brackets in generics never contain braces in this codebase's style;
        // the first `{` after the signature is the body.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            let end = skip_bracketed(toks, j, '{', '}');
            spans.push((name_tok.text.clone(), j, end.saturating_sub(1)));
        }
    }
    spans
}

/// The set of source lines occupied by `#[...]` / `#![...]` attributes.
fn attr_lines(toks: &[Token]) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                let end = skip_bracketed(toks, j, '[', ']');
                for t in &toks[i..end.min(toks.len())] {
                    lines.insert(t.line);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_tokens(path, &lex(src), &HotPathConfig::default())
    }

    #[test]
    fn scopes_follow_paths() {
        assert!(classify("crates/graph/src/graph.rs").protocol);
        assert!(classify("src/lib.rs").protocol);
        assert!(!classify("crates/bench/src/lib.rs").protocol);
        assert!(!classify("crates/graph/tests/properties.rs").protocol);
        assert!(!classify("crates/bench/src/bin/exp.rs").no_ambient_entropy);
        assert!(classify("crates/distsim/src/comm.rs").doc_coverage);
        assert!(!classify("crates/matching/src/engine.rs").doc_coverage);
        assert!(classify("crates/dynamic/src/matcher.rs").protocol);
        assert!(classify("crates/dynamic/src/matcher.rs").doc_coverage);
        assert!(classify("crates/dynamic/src/cover.rs").error_hygiene);
        assert!(!classify("crates/dynamic/tests/dynamic_vs_batch.rs").protocol);
    }

    #[test]
    fn hash_rule_fires_only_in_protocol_scope_and_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        let diags = lint("crates/graph/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn pragma_suppresses_exactly_its_rule() {
        let src = "// xtask: allow(hash-collections)\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let diags = lint("crates/graph/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn nondeterminism_patterns() {
        let src =
            "fn f() { let r = thread_rng(); let t = Instant::now(); let s = SystemTime::now(); }\n";
        let diags = lint("crates/coresets/src/x.rs", src);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(
            lint("crates/bench/src/x.rs", src).is_empty(),
            "bench may time things"
        );
        // `Instant` alone (e.g. a type annotation) is not a violation.
        assert!(lint("crates/coresets/src/y.rs", "fn f(t: Instant) {}\n").is_empty());
    }

    #[test]
    fn env_threads_only_flags_the_two_variables() {
        let src = "fn f() { let a = std::env::var(\"RC_THREADS\"); let b = std::env::var(\"E13_CI\"); }\n";
        let diags = lint("crates/bench/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("RC_THREADS"));
        assert!(lint("vendor/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_scans_only_listed_functions() {
        let cfg = HotPathConfig::from_entries(vec![crate::config::HotPath {
            file: "crates/matching/src/engine.rs".into(),
            functions: vec!["hot".into()],
            reason: "test".into(),
        }]);
        let src = "fn cold() { let v = vec![1]; }\nfn hot() {\n let a = vec![1];\n let b = Vec::new();\n let c = x.to_vec();\n let d = y.clone();\n let e = it.collect::<Vec<_>>();\n}\n";
        let diags = lint_tokens("crates/matching/src/engine.rs", &lex(src), &cfg);
        assert_eq!(diags.len(), 5, "{diags:?}");
        assert!(diags.iter().all(|d| d.line >= 3));
    }

    #[test]
    fn hot_path_config_drift_is_reported() {
        let cfg = HotPathConfig::from_entries(vec![crate::config::HotPath {
            file: "crates/matching/src/engine.rs".into(),
            functions: vec!["renamed_away".into()],
            reason: "test".into(),
        }]);
        let diags = lint_tokens(
            "crates/matching/src/engine.rs",
            &lex("fn other() {}\n"),
            &cfg,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no such function"));
    }

    #[test]
    fn error_hygiene_flags_unwrap_expect_panic_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); z.unwrap_or(0); }\n\
                   #[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(); } }\n";
        let diags = lint("crates/graph/src/x.rs", src);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "error-hygiene"));
        assert!(diags.iter().all(|d| d.line == 1));
        // Only graph/distsim sources are in scope.
        assert!(lint("crates/distsim/src/x.rs", "fn f() { x.unwrap(); }\n").len() == 1);
        assert!(lint("crates/coresets/src/x.rs", src).is_empty());
        assert!(lint("crates/matching/src/x.rs", src).is_empty());
        assert!(lint("crates/graph/tests/t.rs", src).is_empty());
    }

    #[test]
    fn error_hygiene_pragma_suppresses() {
        let src = "fn f() {\n// xtask: allow(error-hygiene)\npanic!(\"documented contract\");\nx.unwrap();\n}\n";
        let diags = lint("crates/distsim/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn missing_docs_checks_pub_fns_through_attributes() {
        let src = "/// documented\npub fn a() {}\n#[inline]\npub fn b() {}\n/// doc\n#[inline]\npub fn c() {}\npub(crate) fn d() {}\nfn e() {}\n";
        let diags = lint("crates/graph/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("pub fn b"));
        assert_eq!(diags[0].line, 4);
    }
}
