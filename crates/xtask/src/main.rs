//! CLI entry point: `cargo run -p xtask -- lint` / `cargo xtask lint`.
//!
//! Exit status is 0 when every invariant holds, 1 when any diagnostic fires
//! (printed as `file:line: [rule] message`, sorted), and 2 on usage or I/O
//! errors — so CI can distinguish "lint found problems" from "lint broke".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <workspace-root>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--root" => match it.next() {
                Some(r) => root_arg = Some(PathBuf::from(r)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if cmd != Some("lint") {
        return usage();
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| xtask::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "xtask: could not locate the workspace root (no Cargo.toml with [workspace])"
            );
            return ExitCode::from(2);
        }
    };

    match xtask::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("xtask lint: all invariants hold");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
