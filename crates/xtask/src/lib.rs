//! `xtask` — the workspace's static-analysis harness.
//!
//! `cargo run -p xtask -- lint` (or `cargo xtask lint` via the alias in
//! `.cargo/config.toml`) walks `src/`, `crates/`, `tests/`, and
//! `vendor/rayon/` (the scheduler is hot-path-linted; the other vendored
//! stand-ins are not walked) and enforces the determinism, hot-path and
//! hygiene invariants the runtime test suite can only sample:
//!
//! * **Token rules** ([`rules`]) — hash-map bans in protocol crates, ambient
//!   entropy/wall-clock bans, `RC_THREADS` read confinement, allocation bans
//!   inside the `hotpaths.toml` engine functions, and doc coverage for
//!   `pub fn`s in the accounting crates.
//! * **Crate hygiene** ([`lint_workspace`]) — every non-vendor crate must
//!   carry `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` in its entry
//!   source file and inherit the centralized `[workspace.lints]` table via
//!   `[lints] workspace = true` in its manifest.
//!
//! Everything is hand-rolled (lexer, TOML subset, directory walk): the
//! workspace builds fully offline and the linter must not be the first thing
//! to need crates.io. See `README.md` § "Static analysis & invariants" for
//! the rule list and the pragma format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

use config::HotPathConfig;
use rules::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// The directories (workspace-relative) the linter walks. `vendor/rayon` is
/// included deliberately: the work-stealing scheduler is a determinism- and
/// allocation-critical hot path (its inner-loop functions are listed in
/// `hotpaths.toml`), unlike the other vendored stand-ins, which stay outside
/// the walk so they remain drop-in replaceable.
pub const WALK_ROOTS: [&str; 4] = ["src", "crates", "tests", "vendor/rayon"];

/// Path of the hot-path config, relative to the workspace root.
pub const HOTPATHS_PATH: &str = "crates/xtask/hotpaths.toml";

/// Crates audited for hygiene: workspace-relative crate directories. The
/// root facade crate is `"."`; vendored stand-ins are exempt (they document
/// their own contracts and must stay drop-in replaceable).
pub fn hygiene_crates(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut sub: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        sub.sort();
        dirs.extend(sub);
    }
    dirs
}

/// Recursively collects `.rs` files under `dir`, skipping `fixtures/` trees
/// (the linter's own known-bad test inputs) and anything named `target`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Normalizes `path` (under `root`) to a workspace-relative, `/`-separated
/// string — the form every rule and `hotpaths.toml` entry uses.
fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads and parses `hotpaths.toml` from the workspace root.
pub fn load_hotpaths(root: &Path) -> Result<HotPathConfig, String> {
    let path = root.join(HOTPATHS_PATH);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(HotPathConfig::from_entries(config::parse_hotpaths(&text)?))
}

/// Runs every rule over the workspace rooted at `root`. Returns diagnostics
/// sorted by `(file, line, rule)`; an empty vec means the lint is green.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let hotpaths = load_hotpaths(root)?;
    let mut files = Vec::new();
    for walk_root in WALK_ROOTS {
        collect_rs_files(&root.join(walk_root), &mut files);
    }
    let mut diags = Vec::new();
    for path in &files {
        let rel = rel_str(root, path);
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        diags.extend(rules::lint_tokens(&rel, &lexer::lex(&src), &hotpaths));
    }
    // Every hotpaths.toml file must exist (a renamed file would otherwise
    // silently drop its allocation lint).
    for file in hotpaths.by_file.keys() {
        if !root.join(file).is_file() {
            diags.push(Diagnostic {
                file: HOTPATHS_PATH.to_string(),
                line: 1,
                rule: "hot-path-alloc",
                message: format!("hotpaths.toml lists `{file}` but that file does not exist"),
            });
        }
    }
    for crate_dir in hygiene_crates(root) {
        diags.extend(lint_crate_hygiene(root, &crate_dir));
    }
    diags.sort();
    diags.dedup();
    Ok(diags)
}

/// The crate-hygiene audit for one crate directory: lint headers in the
/// entry source file and `[lints] workspace = true` in the manifest.
pub fn lint_crate_hygiene(root: &Path, crate_dir: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let manifest = crate_dir.join("Cargo.toml");
    let entry = ["src/lib.rs", "src/main.rs"]
        .iter()
        .map(|p| crate_dir.join(p))
        .find(|p| p.is_file());

    match entry {
        Some(entry_path) => {
            let rel = rel_str(root, &entry_path);
            let src = fs::read_to_string(&entry_path).unwrap_or_default();
            let lexed = lexer::lex(&src);
            for (attr, why) in [
                ("forbid(unsafe_code)", "the workspace is 100% safe Rust"),
                ("warn(missing_docs)", "public API must stay documented"),
            ] {
                if !has_inner_attr(&lexed.tokens, attr) {
                    diags.push(Diagnostic {
                        file: rel.clone(),
                        line: 1,
                        rule: "crate-hygiene",
                        message: format!("missing `#![{attr}]` header ({why})"),
                    });
                }
            }
        }
        None => diags.push(Diagnostic {
            file: rel_str(root, crate_dir),
            line: 1,
            rule: "crate-hygiene",
            message: "crate has neither src/lib.rs nor src/main.rs".to_string(),
        }),
    }

    let rel_manifest = rel_str(root, &manifest);
    match fs::read_to_string(&manifest) {
        Ok(text) => {
            if !manifest_inherits_workspace_lints(&text) {
                diags.push(Diagnostic {
                    file: rel_manifest,
                    line: 1,
                    rule: "crate-hygiene",
                    message: "manifest does not inherit the centralized lint table: add \
                              `[lints]\\nworkspace = true`"
                        .to_string(),
                });
            }
        }
        Err(e) => diags.push(Diagnostic {
            file: rel_manifest,
            line: 1,
            rule: "crate-hygiene",
            message: format!("cannot read manifest: {e}"),
        }),
    }
    diags
}

/// True if the token stream contains `#![name(arg)]` for `attr` written as
/// `"name(arg)"`.
fn has_inner_attr(toks: &[lexer::Token], attr: &str) -> bool {
    let (name, arg) = attr
        .split_once('(')
        .map(|(n, a)| (n, a.trim_end_matches(')')))
        .unwrap_or((attr, ""));
    toks.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(name)
            && w[4].is_punct('(')
            && w[5].is_ident(arg)
    })
}

/// True if the manifest text contains a `[lints]` section whose body sets
/// `workspace = true`.
fn manifest_inherits_workspace_lints(text: &str) -> bool {
    let mut in_lints = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints {
            let mut parts = line.splitn(2, '=');
            let key = parts.next().unwrap_or("").trim();
            let value = parts.next().unwrap_or("").trim();
            if key == "workspace" && value == "true" {
                return true;
            }
        }
    }
    false
}

/// Locates the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_attr_detection() {
        let lexed = lexer::lex("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n");
        assert!(has_inner_attr(&lexed.tokens, "forbid(unsafe_code)"));
        assert!(has_inner_attr(&lexed.tokens, "warn(missing_docs)"));
        assert!(!has_inner_attr(&lexed.tokens, "forbid(missing_docs)"));
    }

    #[test]
    fn manifest_lints_detection() {
        assert!(manifest_inherits_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n"
        ));
        assert!(!manifest_inherits_workspace_lints(
            "[package]\nname = \"x\"\n"
        ));
        assert!(!manifest_inherits_workspace_lints(
            "[lints]\nworkspace = false\n"
        ));
        assert!(!manifest_inherits_workspace_lints(
            "[lints.rust]\nworkspace = true\n"
        ));
    }
}
