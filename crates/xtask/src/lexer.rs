//! A minimal hand-rolled Rust lexer for the invariant linter.
//!
//! The linter does not need a real parser: every rule it enforces is
//! expressible over a comment-and-string-stripped token stream plus a little
//! brace bookkeeping. This module produces exactly that — identifiers,
//! punctuation, numbers, and string literals (with their contents preserved,
//! so the `RC_THREADS` rule can see what `env::var` is asked for), each
//! carrying its 1-based source line.
//!
//! Comments are stripped but not discarded blindly:
//!
//! * `// xtask: allow(rule-a, rule-b)` pragmas are collected per line. A
//!   pragma suppresses matching diagnostics on its own line (trailing
//!   comment) and on the immediately following line (standalone comment
//!   above the offending code).
//! * Doc-comment lines (`///`, `//!`, and `/** ... */`) are recorded so the
//!   doc-coverage rule can tell whether a `pub fn` is documented.
//!
//! The lexer is intentionally forgiving: on input it cannot make sense of it
//! skips a byte rather than erroring, because the linter must never be the
//! reason the build breaks on valid-but-exotic Rust. The fixture tests pin
//! the cases the rules depend on (nested block comments, raw strings,
//! lifetimes vs. char literals).

use std::collections::{BTreeMap, BTreeSet};

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `vec`, ...).
    Ident,
    /// A string literal; `text` holds the *contents* (no quotes, escapes raw).
    Str,
    /// A numeric literal.
    Num,
    /// A single punctuation character (`{`, `!`, `:`, ...).
    Punct,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A character literal; contents are irrelevant to every rule.
    CharLit,
}

/// One token of a lexed source file.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (contents only, for string literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A fully lexed source file: the token stream plus the comment-derived
/// side tables the rules consume.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Comment- and whitespace-free token stream.
    pub tokens: Vec<Token>,
    /// `line -> rules` suppressed by an `// xtask: allow(...)` pragma on that
    /// line. A pragma also covers the following line; [`LexedFile::allows`]
    /// implements that lookup.
    pub pragmas: BTreeMap<usize, BTreeSet<String>>,
    /// Lines that carry a doc comment (`///`, `//!`, or a `/** */` block).
    pub doc_lines: BTreeSet<usize>,
}

impl LexedFile {
    /// True if `rule` is suppressed at `line` — by a pragma on the line
    /// itself or on the line directly above it.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        let hit = |l: usize| {
            self.pragmas
                .get(&l)
                .is_some_and(|rules| rules.contains(rule))
        };
        hit(line) || (line > 0 && hit(line - 1))
    }
}

/// Parses the rule list out of an `xtask: allow(rule-a, rule-b)` comment
/// body, returning `None` if the comment is not a pragma.
fn parse_pragma(comment: &str) -> Option<BTreeSet<String>> {
    let rest = comment.trim_start().strip_prefix("xtask:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let inner = rest.split(')').next()?;
    let rules: BTreeSet<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Lexes `src` into tokens and comment side tables. Never fails: bytes the
/// lexer does not understand are skipped.
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;

    let push = |out: &mut LexedFile, kind: TokKind, text: String, line: usize| {
        out.tokens.push(Token { kind, text, line });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: classify doc vs. pragma vs. plain.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if text.starts_with("///") || text.starts_with("//!") {
                    out.doc_lines.insert(line);
                } else if let Some(rules) = parse_pragma(&text[2..]) {
                    out.pragmas.entry(line).or_default().extend(rules);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested; `/**` is a doc comment.
                let is_doc = bytes.get(i + 2) == Some(&b'*') && bytes.get(i + 3) != Some(&b'/');
                if is_doc {
                    out.doc_lines.insert(line);
                }
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        if is_doc {
                            out.doc_lines.insert(line);
                        }
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (contents, consumed, newlines) = scan_string(&src[i..]);
                push(&mut out, TokKind::Str, contents, line);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&src[i..]) => {
                let (contents, consumed, newlines) = scan_prefixed_string(&src[i..]);
                push(&mut out, TokKind::Str, contents, line);
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime (`'a`) vs. char literal (`'a'`, `'\n'`).
                let rest = &src[i + 1..];
                let ident_len = rest
                    .chars()
                    .take_while(|&ch| ch == '_' || ch.is_alphanumeric())
                    .map(char::len_utf8)
                    .sum::<usize>();
                if ident_len > 0 && !rest[ident_len..].starts_with('\'') {
                    push(
                        &mut out,
                        TokKind::Lifetime,
                        format!("'{}", &rest[..ident_len]),
                        line,
                    );
                    i += 1 + ident_len;
                } else {
                    let (consumed, newlines) = scan_char_literal(&src[i..]);
                    push(&mut out, TokKind::CharLit, String::new(), line);
                    line += newlines;
                    i += consumed;
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < bytes.len() {
                    let ch = src[i..].chars().next().unwrap();
                    if ch == '_' || ch.is_alphanumeric() {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                push(&mut out, TokKind::Ident, src[start..i].to_string(), line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                        // Stop at `..` (range) and method calls on literals.
                        if ch == '.' && bytes.get(i + 1) == Some(&b'.') {
                            break;
                        }
                        if ch == '.'
                            && !(bytes.get(i + 1).copied().unwrap_or(b' ') as char).is_ascii_digit()
                        {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out, TokKind::Num, src[start..i].to_string(), line);
            }
            c => {
                push(&mut out, TokKind::Punct, c.to_string(), line);
                i += c.len_utf8();
            }
        }
    }
    out
}

/// True if the input starts a raw string (`r"`, `r#"`), byte string (`b"`),
/// or raw byte string (`br"`, `br#"`), as opposed to an identifier.
fn starts_raw_or_byte_string(s: &str) -> bool {
    let rest = s
        .strip_prefix("br")
        .or_else(|| s.strip_prefix("rb"))
        .or_else(|| s.strip_prefix('r'))
        .or_else(|| s.strip_prefix('b'));
    match rest {
        Some(rest) => {
            let rest = rest.trim_start_matches('#');
            rest.starts_with('"') || (s.starts_with('b') && rest.starts_with('\''))
        }
        None => false,
    }
}

/// Scans a plain `"..."` literal starting at the opening quote. Returns
/// (contents, bytes consumed, newlines crossed).
fn scan_string(s: &str) -> (String, usize, usize) {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    let mut newlines = 0usize;
    let mut contents = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                i += 2; // escape: skip the escaped byte wholesale
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                newlines += 1;
                contents.push('\n');
                i += 1;
            }
            _ => {
                let ch = s[i..].chars().next().unwrap();
                contents.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    (contents, i, newlines)
}

/// Scans a string with an `r`/`b`/`br` prefix (raw and/or byte). Returns
/// (contents, bytes consumed, newlines crossed).
fn scan_prefixed_string(s: &str) -> (String, usize, usize) {
    let mut i = 0usize;
    let bytes = s.as_bytes();
    let mut raw = false;
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        raw |= bytes[i] == b'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // A byte char literal such as b'x'.
        let (consumed, newlines) = scan_char_literal(&s[i..]);
        return (String::new(), i + consumed, newlines);
    }
    if bytes.get(i) != Some(&b'"') {
        // Not actually a string (e.g. identifier starting with `r#`); consume
        // one byte and let the main loop re-lex the rest.
        return (String::new(), 1, 0);
    }
    i += 1;
    let start = i;
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    if raw {
        match s[i..].find(&closer) {
            Some(off) => {
                let contents = &s[start..i + off];
                let newlines = contents.matches('\n').count();
                (contents.to_string(), i + off + closer.len(), newlines)
            }
            None => (
                s[start..].to_string(),
                s.len(),
                s[start..].matches('\n').count(),
            ),
        }
    } else {
        let (contents, consumed, newlines) = scan_string(&s[i - 1..]);
        (contents, i - 1 + consumed, newlines)
    }
}

/// Scans a char literal starting at `'`. Returns (bytes consumed, newlines).
fn scan_char_literal(s: &str) -> (usize, usize) {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
        // Escapes like \u{1F600} run until the closing brace.
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
    } else if i < bytes.len() {
        i += s[i..].chars().next().map_or(1, char::len_utf8);
    }
    if bytes.get(i) == Some(&b'\'') {
        i += 1;
    }
    (i, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_keeping_lines() {
        let lexed = lex("let a = 1; // plain comment\nlet b = \"HashMap\";\nHashMap::new();\n");
        let idents: Vec<(&str, usize)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert!(idents.contains(&("HashMap", 3)));
        assert!(
            !idents.contains(&("HashMap", 2)),
            "string contents must not lex as idents"
        );
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["HashMap"]);
    }

    #[test]
    fn pragmas_cover_their_line_and_the_next() {
        let lexed = lex("// xtask: allow(hash-collections)\nuse std::collections::HashMap;\nlet x = 1; // xtask: allow(rule-b, rule-c)\n");
        assert!(lexed.allows("hash-collections", 1));
        assert!(lexed.allows("hash-collections", 2));
        assert!(!lexed.allows("hash-collections", 3));
        assert!(lexed.allows("rule-b", 3));
        assert!(lexed.allows("rule-c", 3));
        assert!(!lexed.allows("rule-d", 3));
    }

    #[test]
    fn doc_comment_lines_are_recorded() {
        let lexed = lex("/// docs\npub fn f() {}\n//! inner\n/** block\ndoc */\nfn g() {}\n");
        assert!(lexed.doc_lines.contains(&1));
        assert!(lexed.doc_lines.contains(&3));
        assert!(lexed.doc_lines.contains(&4));
        assert!(lexed.doc_lines.contains(&5));
        assert!(!lexed.doc_lines.contains(&2));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let lexed = lex("/* a /* b */ c */ fn f() { let s = r#\"Instant::now \"quoted\"\"#; }\n");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(
            !lexed.tokens.iter().any(|t| t.is_ident("Instant")),
            "raw string contents must stay out of the ident stream"
        );
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("Instant::now")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::CharLit)
                .count(),
            1
        );
    }

    #[test]
    fn multiline_strings_advance_the_line_counter() {
        let lexed = lex("let s = \"one\ntwo\";\nHashMap\n");
        let hm = lexed.tokens.iter().find(|t| t.is_ident("HashMap")).unwrap();
        assert_eq!(hm.line, 3);
    }
}
