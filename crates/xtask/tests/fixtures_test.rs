//! Linter self-tests: every rule must fire on its known-bad fixture at the
//! exact `file:line`, pragmas must suppress, clean input must stay clean, and
//! the real workspace must lint green (the dogfood test).
//!
//! The fixture corpus lives in `tests/fixtures/` — a directory the linter's
//! own workspace walk skips, so the known-bad snippets never pollute a real
//! `cargo xtask lint` run. Fixtures are linted *as if* they lived at a
//! pretend protocol-crate path, because rule scoping is path-driven.

use std::path::{Path, PathBuf};
use xtask::config::{HotPath, HotPathConfig};
use xtask::lexer::lex;
use xtask::rules::{lint_tokens, Diagnostic};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints fixture `name` as if it lived at `pretend_path` in the workspace.
fn lint_fixture(name: &str, pretend_path: &str, cfg: &HotPathConfig) -> Vec<Diagnostic> {
    lint_tokens(pretend_path, &lex(&fixture(name)), cfg)
}

fn lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn hash_collections_fixture_fires_at_exact_lines() {
    let diags = lint_fixture(
        "bad_hash_collections.rs",
        "crates/graph/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert!(
        diags.iter().all(|d| d.rule == "hash-collections"),
        "{diags:?}"
    );
    assert!(diags
        .iter()
        .all(|d| d.file == "crates/graph/src/fixture.rs"));
    // Line 9 holds both the type annotation and the constructor; the
    // `#[cfg(test)]` HashSet at line 14 must NOT appear.
    assert_eq!(lines(&diags, "hash-collections"), vec![5, 6, 9, 9]);
    assert_eq!(
        diags[0].to_string().split(':').take(2).collect::<Vec<_>>(),
        vec!["crates/graph/src/fixture.rs", "5"],
        "Display must render file:line first for editor jump-to"
    );
}

#[test]
fn nondeterminism_fixture_fires_at_exact_lines() {
    let diags = lint_fixture(
        "bad_nondeterminism.rs",
        "crates/coresets/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert!(
        diags.iter().all(|d| d.rule == "nondeterminism"),
        "{diags:?}"
    );
    assert_eq!(lines(&diags, "nondeterminism"), vec![6, 7, 8, 9]);
}

#[test]
fn env_threads_fixture_fires_at_exact_lines() {
    let diags = lint_fixture(
        "bad_env_threads.rs",
        "crates/bench/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert!(diags.iter().all(|d| d.rule == "env-threads"), "{diags:?}");
    assert_eq!(lines(&diags, "env-threads"), vec![6, 7]);
    // The same source under vendor/rayon is exempt.
    assert!(lint_fixture(
        "bad_env_threads.rs",
        "vendor/rayon/src/lib.rs",
        &HotPathConfig::default()
    )
    .is_empty());
}

#[test]
fn hot_path_alloc_fixture_fires_only_inside_watched_fn() {
    let cfg = HotPathConfig::from_entries(vec![HotPath {
        file: "crates/matching/src/engine.rs".into(),
        functions: vec!["solve_inner".into()],
        reason: "fixture".into(),
    }]);
    let diags = lint_fixture(
        "bad_hot_path_alloc.rs",
        "crates/matching/src/engine.rs",
        &cfg,
    );
    assert!(
        diags.iter().all(|d| d.rule == "hot-path-alloc"),
        "{diags:?}"
    );
    // One hit per allocation pattern inside `solve_inner`; the identical
    // `.to_vec()` inside `cold_path` (line 14) must NOT appear.
    assert_eq!(lines(&diags, "hot-path-alloc"), vec![6, 7, 8, 9, 10]);
}

#[test]
fn missing_docs_fixture_fires_at_exact_line() {
    let diags = lint_fixture(
        "bad_missing_docs.rs",
        "crates/graph/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert_eq!(lines(&diags, "missing-docs"), vec![8], "{diags:?}");
    assert!(diags[0].message.contains("undocumented"));
}

#[test]
fn error_hygiene_fixture_fires_at_exact_lines() {
    let diags = lint_fixture(
        "bad_error_hygiene.rs",
        "crates/distsim/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert!(diags.iter().all(|d| d.rule == "error-hygiene"), "{diags:?}");
    // `.unwrap()`, `.expect(`, `panic!` in the library fn; the `unwrap_or`
    // at line 10 and the whole `#[cfg(test)]` module must NOT appear.
    assert_eq!(lines(&diags, "error-hygiene"), vec![5, 6, 8]);
    // The same source outside graph/distsim is out of scope.
    assert!(lint_fixture(
        "bad_error_hygiene.rs",
        "crates/matching/src/fixture.rs",
        &HotPathConfig::default()
    )
    .is_empty());
}

#[test]
fn pragmas_suppress_every_listed_violation() {
    let diags = lint_fixture(
        "suppressed.rs",
        "crates/graph/src/fixture.rs",
        &HotPathConfig::default(),
    );
    assert!(
        diags.is_empty(),
        "pragma-carrying fixture must lint clean: {diags:?}"
    );
}

#[test]
fn clean_fixture_stays_clean_in_every_scope() {
    for pretend in [
        "crates/graph/src/fixture.rs",
        "crates/coresets/src/fixture.rs",
        "src/fixture.rs",
        "tests/fixture.rs",
    ] {
        let diags = lint_fixture("clean.rs", pretend, &HotPathConfig::default());
        assert!(diags.is_empty(), "{pretend}: {diags:?}");
    }
}

#[test]
fn crate_hygiene_flags_missing_headers_and_lint_inheritance() {
    let root = fixture_dir();
    let diags = xtask::lint_crate_hygiene(&root, &root.join("bad_crate"));
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["crate-hygiene"; 3], "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.message.contains("forbid(unsafe_code)")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("warn(missing_docs)")));
    assert!(diags.iter().any(|d| d.message.contains("[lints]")));
    assert!(
        diags
            .iter()
            .filter(|d| d.message.contains("header"))
            .all(|d| d.file == "bad_crate/src/lib.rs"),
        "{diags:?}"
    );
}

/// CLI contract half 1: the binary exits nonzero on a broken workspace and
/// prints `file:line: [rule]` diagnostics.
#[test]
fn cli_exits_nonzero_on_bad_workspace_with_file_line() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(fixture_dir().join("bad_workspace"))
        .output()
        .expect("run xtask binary");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/lib.rs:1: [hash-collections]"),
        "diagnostic must carry exact file:line, got:\n{stdout}"
    );
}

/// CLI contract half 2 (the dogfood test): the real workspace lints green, so
/// `cargo test` itself enforces every invariant the linter encodes.
#[test]
fn cli_exits_zero_on_the_real_workspace() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("xtask lives inside the workspace");
    let diags = xtask::lint_workspace(&root).expect("lint runs");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("run xtask binary");
    assert_eq!(out.status.code(), Some(0));
}
