//! Known-bad fixture: ambient entropy and wall-clock reads. Linted under a
//! (pretend) `crates/coresets/src/fixture.rs`; expects `nondeterminism` at
//! lines 6, 7, 8 and 9, while the bare `Instant` type at line 5 stays clean.

fn sample(_t0: std::time::Instant) {
    let _r = rand::thread_rng();
    let _e = ChaCha8Rng::from_entropy();
    let _t = std::time::Instant::now();
    let _w = std::time::SystemTime::now();
}
