// Known-bad fixture entry file: missing both lint headers
// (`#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`).

pub fn no_headers_here() {}
