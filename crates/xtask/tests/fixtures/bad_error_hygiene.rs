//! Known-bad fixture for the `error-hygiene` rule: unwrap/expect/panic in
//! library code, with a `#[cfg(test)]` module that must stay exempt.

fn lib_code(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a + b == 0 {
        panic!("impossible");
    }
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_freely() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
