//! Known-bad fixture: hash collections in (pretend) protocol-crate source.
//! The self-test lints this under `crates/graph/src/fixture.rs` and expects
//! `hash-collections` at lines 5, 6 and 9 (twice) — and nothing from tests.

use std::collections::HashMap;
use std::collections::HashSet;

fn build() {
    let _m: HashMap<u32, u32> = HashMap::new();
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
}
