//! Clean fixture: deterministic collections, no ambient entropy, documented
//! API. Linting this file under any scope must produce zero diagnostics.

use std::collections::BTreeMap;

/// Documented public entry point.
pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
