//! Known-bad fixture: allocations inside a watched hot-path function. The
//! self-test lints this under `crates/matching/src/engine.rs` with a config
//! watching `solve_inner`; expects `hot-path-alloc` at lines 6-10 only.

fn solve_inner(xs: &[u32]) {
    let _a = vec![0u32; 4];
    let _b: Vec<u32> = Vec::new();
    let _c = xs.to_vec();
    let _d = _c.clone();
    let _e = xs.iter().collect::<Vec<_>>();
}

fn cold_path(xs: &[u32]) {
    let _fine = xs.to_vec();
}
