//! Known-bad fixture: thread-count environment reads outside vendor/rayon.
//! Linted under a (pretend) `crates/bench/src/fixture.rs`; expects
//! `env-threads` at lines 6 and 7, while the unrelated read at 8 stays clean.

fn threads() -> Option<String> {
    let _a = std::env::var("RC_THREADS").ok();
    let _b = std::env::var_os("RAYON_NUM_THREADS");
    std::env::var("HOME").ok()
}
