//! Known-bad fixture: an undocumented `pub fn` in a doc-coverage crate. The
//! self-test lints this under `crates/graph/src/fixture.rs`; expects
//! `missing-docs` at line 8 for `undocumented` and nothing for the rest.

/// Documented, fine.
pub fn documented() {}

pub fn undocumented() {}

pub(crate) fn internal_api_is_exempt() {}
