//! Pragma fixture: every violation below carries an `xtask: allow` pragma
//! (both the line-above and trailing placements), so linting this file under
//! any protocol path must produce zero diagnostics.

// xtask: allow(hash-collections)
use std::collections::HashMap;
use std::collections::HashSet; // xtask: allow(hash-collections)

fn sample() {
    let _t = std::time::Instant::now(); // xtask: allow(nondeterminism)
}
