use std::collections::HashMap;
