//! Matching algorithms used throughout the coreset reproduction.
//!
//! The paper's matching coreset is "any maximum matching of `G^(i)`"
//! (Theorem 1), its negative control is "an arbitrary maximal matching", and
//! its analysis relies on the greedy combining process `GreedyMatch`.
//! This crate supplies every matching primitive those constructions need:
//!
//! * [`Matching`] — a validated set of vertex-disjoint edges.
//! * [`greedy`] — maximal matchings under arbitrary, random or adversarial
//!   edge orderings.
//! * [`hopcroft_karp`](mod@hopcroft_karp) — maximum matching in bipartite graphs in
//!   `O(m sqrt(n))`.
//! * [`blossom`] — Edmonds' blossom algorithm for maximum matching in general
//!   graphs.
//! * [`maximum`] — a front-end that picks Hopcroft–Karp when the graph is
//!   bipartite and Blossom otherwise.
//! * [`engine`] — the solver hot path behind [`maximum`]: vertex compaction,
//!   one CSR shared by the bipartiteness check and the solver, warm starts,
//!   and per-thread buffer reuse.
//! * [`workspace`] — the epoch-reset [`BlossomWorkspace`] that removes the
//!   per-search `O(n)` clears and allocations from the blossom algorithm.
//! * [`weighted`] — greedy weighted matching and the Crouch–Stubbs
//!   weight-class reduction used by the paper's weighted extension.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blossom;
pub mod engine;
pub mod greedy;
pub mod hopcroft_karp;
pub mod matching;
pub mod maximum;
pub mod weighted;
pub mod workspace;

pub use blossom::{blossom_maximum_matching, blossom_maximum_matching_with};
pub use engine::MatchingEngine;
pub use greedy::{maximal_matching, maximal_matching_by_key, maximal_matching_shuffled};
pub use hopcroft_karp::hopcroft_karp;
pub use matching::Matching;
pub use maximum::{maximum_matching, maximum_matching_warm, MaximumMatchingAlgorithm};
pub use weighted::{crouch_stubbs_matching, greedy_weighted_matching, WeightedMatching};
pub use workspace::BlossomWorkspace;
