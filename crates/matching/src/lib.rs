//! Matching algorithms used throughout the coreset reproduction.
//!
//! The paper's matching coreset is "any maximum matching of `G^(i)`"
//! (Theorem 1), its negative control is "an arbitrary maximal matching", and
//! its analysis relies on the greedy combining process `GreedyMatch`.
//! This crate supplies every matching primitive those constructions need:
//!
//! * [`Matching`] — a validated set of vertex-disjoint edges.
//! * [`greedy`] — maximal matchings under arbitrary, random or adversarial
//!   edge orderings.
//! * [`hopcroft_karp`](mod@hopcroft_karp) — maximum matching in bipartite graphs in
//!   `O(m sqrt(n))`.
//! * [`blossom`] — Edmonds' blossom algorithm for maximum matching in general
//!   graphs.
//! * [`maximum`] — a front-end that picks Hopcroft–Karp when the graph is
//!   bipartite and Blossom otherwise.
//! * [`weighted`] — greedy weighted matching and the Crouch–Stubbs
//!   weight-class reduction used by the paper's weighted extension.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blossom;
pub mod greedy;
pub mod hopcroft_karp;
pub mod matching;
pub mod maximum;
pub mod weighted;

pub use blossom::blossom_maximum_matching;
pub use greedy::{maximal_matching, maximal_matching_by_key, maximal_matching_shuffled};
pub use hopcroft_karp::hopcroft_karp;
pub use matching::Matching;
pub use maximum::{maximum_matching, MaximumMatchingAlgorithm};
pub use weighted::{crouch_stubbs_matching, greedy_weighted_matching, WeightedMatching};
