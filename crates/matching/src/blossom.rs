//! Edmonds' blossom algorithm: maximum matching in general graphs.
//!
//! The paper's matching coreset is defined for arbitrary graphs, so the
//! library needs a maximum-matching routine that does not assume
//! bipartiteness. This is the classic `O(n^3)` blossom-contraction
//! implementation (BFS from each free vertex, contracting odd cycles via a
//! `base` array). It is fast enough for pieces with tens of thousands of
//! edges, which is the regime of the experiments; bipartite inputs should
//! prefer [`crate::hopcroft_karp`](mod@crate::hopcroft_karp).

use crate::matching::Matching;
use graph::{Csr, Edge, GraphRef};
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;

/// Computes a maximum matching of a general graph.
///
/// Accepts any [`GraphRef`]; the adjacency is built once as a [`Csr`] (the
/// canonical traversal structure) rather than a per-call `Vec<Vec<_>>`.
pub fn blossom_maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
    let n = g.n();
    let adj = Csr::from_ref(g);
    // `mate[v]` = partner of v or NONE.
    let mut mate = vec![NONE; n];

    // Greedy initialisation speeds up the augmenting phase substantially.
    for v in 0..n as u32 {
        if mate[v as usize] == NONE {
            for &w in adj.neighbors(v) {
                if mate[w as usize] == NONE {
                    mate[v as usize] = w;
                    mate[w as usize] = v;
                    break;
                }
            }
        }
    }

    let mut state = BlossomState {
        n,
        parent: vec![NONE; n],
        base: (0..n as u32).collect(),
        queue: VecDeque::new(),
        used: vec![false; n],
        blossom: vec![false; n],
    };

    for v in 0..n as u32 {
        // A free vertex with no incident edges cannot start an augmenting
        // path; skipping it avoids the O(n) per-search state reset (sparse
        // pieces of a large partition are mostly isolated vertices).
        if mate[v as usize] == NONE && adj.degree(v) > 0 {
            state.augment_from(v, &adj, &mut mate);
        }
    }

    let mut edges = Vec::new();
    for v in 0..n as u32 {
        let w = mate[v as usize];
        if w != NONE && v < w {
            edges.push(Edge::new(v, w));
        }
    }
    Matching::from_edges(edges)
}

struct BlossomState {
    n: usize,
    parent: Vec<u32>,
    base: Vec<u32>,
    queue: VecDeque<u32>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

impl BlossomState {
    /// Attempts to find and apply an augmenting path starting at the free
    /// vertex `root`. Returns `true` if the matching was augmented.
    fn augment_from(&mut self, root: u32, adj: &Csr, mate: &mut [u32]) -> bool {
        self.used.iter_mut().for_each(|x| *x = false);
        self.parent.iter_mut().for_each(|x| *x = NONE);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i as u32;
        }
        self.queue.clear();
        self.queue.push_back(root);
        self.used[root as usize] = true;

        while let Some(v) = self.queue.pop_front() {
            for &to in adj.neighbors(v) {
                if self.base[v as usize] == self.base[to as usize] || mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (mate[to as usize] != NONE
                        && self.parent[mate[to as usize] as usize] != NONE)
                {
                    // Found a blossom: contract it.
                    let cur_base = self.lca(v, to, mate);
                    self.blossom.iter_mut().for_each(|x| *x = false);
                    self.mark_path(v, cur_base, to, mate);
                    self.mark_path(to, cur_base, v, mate);
                    for i in 0..self.n {
                        if self.blossom[self.base[i] as usize] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                self.queue.push_back(i as u32);
                            }
                        }
                    }
                } else if self.parent[to as usize] == NONE {
                    self.parent[to as usize] = v;
                    if mate[to as usize] == NONE {
                        // Augmenting path found: flip matched edges along it.
                        self.augment_along(to, mate);
                        return true;
                    }
                    let next = mate[to as usize];
                    self.used[next as usize] = true;
                    self.queue.push_back(next);
                }
            }
        }
        false
    }

    /// Lowest common ancestor of `a` and `b` in the alternating forest
    /// (walking via bases and mates).
    fn lca(&self, mut a: u32, mut b: u32, mate: &[u32]) -> u32 {
        let mut visited = vec![false; self.n];
        loop {
            a = self.base[a as usize];
            visited[a as usize] = true;
            if mate[a as usize] == NONE {
                break;
            }
            a = self.parent[mate[a as usize] as usize];
        }
        loop {
            b = self.base[b as usize];
            if visited[b as usize] {
                return b;
            }
            b = self.parent[mate[b as usize] as usize];
        }
    }

    /// Marks blossom membership along the path from `v` up to the blossom
    /// base, rewiring parents so that the contracted blossom can be traversed
    /// in both directions.
    fn mark_path(&mut self, mut v: u32, base: u32, mut child: u32, mate: &[u32]) {
        while self.base[v as usize] != base {
            self.blossom[self.base[v as usize] as usize] = true;
            self.blossom[self.base[mate[v as usize] as usize] as usize] = true;
            self.parent[v as usize] = child;
            child = mate[v as usize];
            v = self.parent[mate[v as usize] as usize];
        }
    }

    /// Flips matched/unmatched edges along the alternating path ending at the
    /// free vertex `v`.
    fn augment_along(&self, mut v: u32, mate: &mut [u32]) {
        while v != NONE {
            let pv = self.parent[v as usize];
            let ppv = mate[pv as usize];
            mate[v as usize] = pv;
            mate[pv as usize] = v;
            v = ppv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp_size;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::bipartite::random_bipartite;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(blossom_maximum_matching(&path(2)).len(), 1);
        assert_eq!(blossom_maximum_matching(&path(5)).len(), 2);
        assert_eq!(blossom_maximum_matching(&path(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&cycle(5)).len(), 2);
        assert_eq!(blossom_maximum_matching(&cycle(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&star(7)).len(), 1);
        assert_eq!(blossom_maximum_matching(&complete(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&complete(7)).len(), 3);
        assert_eq!(blossom_maximum_matching(&Graph::empty(4)).len(), 0);
    }

    #[test]
    fn odd_cycle_with_pendant_needs_blossom_reasoning() {
        // Triangle 0-1-2 plus pendant edge 2-3: maximum matching is 2.
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let m = blossom_maximum_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn two_triangles_joined_by_a_bridge() {
        // Classic blossom test: two triangles {0,1,2} and {3,4,5} joined by
        // the bridge 2-3. Maximum matching is 3.
        let g = Graph::from_pairs(
            6,
            vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
        .unwrap();
        assert_eq!(blossom_maximum_matching(&g).len(), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph (10 vertices, 15 edges) has a perfect matching of size 5.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(u32, u32)> = outer
            .iter()
            .chain(spokes.iter())
            .chain(inner.iter())
            .copied()
            .collect();
        let g = Graph::from_pairs(10, edges).unwrap();
        let m = blossom_maximum_matching(&g);
        assert_eq!(m.len(), 5);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..20 {
            let g = gnp(10, 0.3, &mut rng(seed));
            let blossom = blossom_maximum_matching(&g);
            assert!(blossom.is_valid_for(&g));
            let brute = brute_force_maximum_matching_size(&g);
            assert_eq!(blossom.len(), brute, "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_bipartite_graphs() {
        for seed in 0..5 {
            let bg = random_bipartite(30, 30, 0.08, &mut rng(seed + 50));
            let hk = hopcroft_karp_size(&bg);
            let bl = blossom_maximum_matching(&bg.to_graph()).len();
            assert_eq!(hk, bl, "seed {seed}");
        }
    }

    #[test]
    fn larger_random_graph_is_consistent_with_maximality_bound() {
        let mut r = rng(99);
        let g = gnp(300, 0.02, &mut r);
        let maximum = blossom_maximum_matching(&g);
        assert!(maximum.is_valid_for(&g));
        let maximal = crate::greedy::maximal_matching(&g);
        // maximum >= maximal >= maximum / 2
        assert!(maximum.len() >= maximal.len());
        assert!(2 * maximal.len() >= maximum.len());
    }
}
