//! Edmonds' blossom algorithm: maximum matching in general graphs.
//!
//! The paper's matching coreset is defined for arbitrary graphs, so the
//! library needs a maximum-matching routine that does not assume
//! bipartiteness. This is the classic blossom-contraction algorithm (BFS from
//! each free vertex, contracting odd cycles via a `base` array), rebuilt
//! around [`BlossomWorkspace`] so that each augmenting search costs time
//! proportional to the vertices it actually *touches*:
//!
//! * the per-search `O(n)` clears of `used`/`parent`/`base` are replaced by
//!   epoch stamps (see the [workspace docs](crate::workspace));
//! * the per-call `vec![false; n]` allocations of the LCA and contraction
//!   steps are replaced by a shared, mark-epoch-stamped array;
//! * blossom contraction is `O(cycle length)` instead of the classic `O(n)`
//!   sweep: the bases on the blossom path are collected while the path is
//!   marked and unioned into the new base through the workspace's
//!   epoch-stamped union-find, so no per-contraction scan of any kind
//!   remains (coreset unions trigger tens of thousands of contractions —
//!   the sweep was the dominant cost of the coordinator's solve).
//!
//! The contraction shortcut is exact, not heuristic: a vertex whose base
//! chain is non-trivial joined an earlier blossom of the *same* search and
//! was enqueued then, so the only vertices a contraction can newly reach are
//! the blossom-path bases themselves — precisely the collected candidates,
//! which are applied in ascending vertex order like the classic `for i in
//! 0..n` sweep. The search is therefore **step-identical** to the textbook
//! implementation: for the same input and initial matching it returns the
//! exact same maximum matching, only without the `O(n)` work (experiment
//! E13 pins this against a frozen copy of the pre-overhaul solver).
//!
//! Callers with many solves (the coreset builders, the coordinator) should
//! reuse one workspace via [`blossom_maximum_matching_with`] or the
//! [`MatchingEngine`](crate::engine::MatchingEngine), which additionally
//! compacts away isolated vertices; [`blossom_maximum_matching`] remains the
//! simple one-shot entry point.

use crate::matching::Matching;
use crate::workspace::{BlossomWorkspace, NONE};
use graph::{Csr, Edge, GraphRef};

/// Computes a maximum matching of a general graph.
///
/// Accepts any [`GraphRef`]; the adjacency is built once as a [`Csr`] (the
/// canonical traversal structure) and the search state lives in a fresh
/// [`BlossomWorkspace`]. Reuse a workspace across solves with
/// [`blossom_maximum_matching_with`].
pub fn blossom_maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
    let mut ws = BlossomWorkspace::new();
    blossom_maximum_matching_with(g, &mut ws)
}

/// Computes a maximum matching of `g`, reusing `ws` for all search state
/// (no per-search allocations or `O(n)` resets; see [`BlossomWorkspace`]).
pub fn blossom_maximum_matching_with<G: GraphRef + ?Sized>(
    g: &G,
    ws: &mut BlossomWorkspace,
) -> Matching {
    let adj = Csr::from_ref(g);
    Matching::from_edges(blossom_on_csr(&adj, ws, &[]))
}

/// Core solver: maximum matching of the graph described by `adj`, optionally
/// warm-started from `warm`.
///
/// `warm` must be a set of vertex-disjoint edges of the graph (a
/// [`Matching`]'s edges); the solver seeds its `mate` array with them before
/// the greedy initialisation — the seed changes which maximum matching
/// comes out and how much augmenting work is left, never the returned
/// matching's *size* (the algorithm always terminates at a maximum
/// matching). Warm edges that are not edges of the graph are skipped
/// (debug builds assert). Returns the matched edges in ascending vertex
/// order.
pub fn blossom_on_csr(adj: &Csr, ws: &mut BlossomWorkspace, warm: &[Edge]) -> Vec<Edge> {
    let n = adj.n();
    ws.begin_solve(n);

    // Warm start: adopt the caller's matching as the initial mate assignment.
    // Edges that are not edges of this graph are skipped (not just
    // debug-asserted): a foreign edge seeded into `mate` would survive into
    // the output and make it an invalid matching.
    for e in warm {
        if !adj.has_edge(e.u, e.v) {
            debug_assert!(false, "warm edge {e:?} does not exist in the graph");
            continue;
        }
        if ws.mate[e.u as usize] == NONE && ws.mate[e.v as usize] == NONE {
            ws.mate[e.u as usize] = e.v;
            ws.mate[e.v as usize] = e.u;
        }
    }

    // Greedy initialisation speeds up the augmenting phase substantially.
    for v in 0..n as u32 {
        if ws.mate[v as usize] == NONE {
            for &w in adj.neighbors(v) {
                if ws.mate[w as usize] == NONE {
                    ws.mate[v as usize] = w;
                    ws.mate[w as usize] = v;
                    break;
                }
            }
        }
    }

    for v in 0..n as u32 {
        // A free vertex with no incident edges cannot start an augmenting
        // path; skipping it avoids even the O(1) epoch bump.
        if ws.mate[v as usize] == NONE && adj.degree(v) > 0 {
            augment_from(ws, adj, v);
        }
    }

    // The matching itself is this function's output; building it is the one
    // permitted allocation.
    let mut edges = Vec::new(); // xtask: allow(hot-path-alloc)
    for v in 0..n as u32 {
        let w = ws.mate[v as usize];
        if w != NONE && v < w {
            edges.push(Edge { u: v, v: w });
        }
    }
    edges
}

/// Attempts to find and apply an augmenting path starting at the free vertex
/// `root`. Returns `true` if the matching was augmented.
fn augment_from(ws: &mut BlossomWorkspace, adj: &Csr, root: u32) -> bool {
    ws.begin_search(root);

    while let Some(v) = ws.queue.pop_front() {
        for &to in adj.neighbors(v) {
            if ws.find_base(v) == ws.find_base(to) || ws.mate[v as usize] == to {
                continue;
            }
            if to == root
                || (ws.mate[to as usize] != NONE && ws.parent_of(ws.mate[to as usize]) != NONE)
            {
                // Found a blossom: contract it.
                let cur_base = lca(ws, v, to);
                ws.bump_mark();
                ws.candidates.clear();
                mark_path(ws, v, cur_base, to);
                mark_path(ws, to, cur_base, v);
                contract(ws, cur_base);
            } else if ws.parent_of(to) == NONE {
                ws.set_parent(to, v);
                if ws.mate[to as usize] == NONE {
                    // Augmenting path found: flip matched edges along it.
                    augment_along(ws, to);
                    return true;
                }
                let next = ws.mate[to as usize];
                ws.set_used(next);
                ws.queue.push_back(next);
            }
        }
    }
    false
}

/// Lowest common ancestor of `a` and `b` in the alternating forest (walking
/// via bases and mates), using mark stamps as the visited set.
fn lca(ws: &mut BlossomWorkspace, mut a: u32, mut b: u32) -> u32 {
    ws.bump_mark();
    loop {
        a = ws.find_base(a);
        ws.set_mark(a);
        if ws.mate[a as usize] == NONE {
            break;
        }
        a = ws.parent_of(ws.mate[a as usize]);
    }
    loop {
        b = ws.find_base(b);
        if ws.is_marked(b) {
            return b;
        }
        b = ws.parent_of(ws.mate[b as usize]);
    }
}

/// Marks blossom membership along the path from `v` up to the blossom base
/// `bbase`, rewiring parents so that the contracted blossom can be traversed
/// in both directions, and collecting each marked base once into the
/// contraction's candidate list.
fn mark_path(ws: &mut BlossomWorkspace, mut v: u32, bbase: u32, mut child: u32) {
    loop {
        let bv = ws.find_base(v);
        if bv == bbase {
            break;
        }
        let mate_v = ws.mate[v as usize];
        let bm = ws.find_base(mate_v);
        if !ws.is_marked(bv) {
            ws.set_mark(bv);
            ws.candidates.push(bv);
        }
        if bm != bbase && !ws.is_marked(bm) {
            ws.set_mark(bm);
            ws.candidates.push(bm);
        }
        ws.set_parent(v, child);
        child = mate_v;
        v = ws.parent_of(mate_v);
    }
}

/// Unions the collected blossom-path bases into `cur_base` and enqueues the
/// ones the search had not reached yet.
///
/// This is exactly the effect of the classic full `0..n` sweep: any other
/// vertex whose base lies on the path joined an earlier blossom of this
/// search (its base chain is non-trivial), was enqueued by *that*
/// contraction, and keeps answering the new base through its chain — so only
/// the path bases themselves can need re-basing or enqueueing. Candidates
/// are applied in ascending vertex order to preserve the classic sweep's
/// queue order.
fn contract(ws: &mut BlossomWorkspace, cur_base: u32) {
    let mut candidates = std::mem::take(&mut ws.candidates);
    candidates.sort_unstable();
    for &b in &candidates {
        ws.link_base(b, cur_base);
        if !ws.is_used(b) {
            ws.set_used(b);
            ws.queue.push_back(b);
        }
    }
    candidates.clear();
    ws.candidates = candidates;
}

/// Flips matched/unmatched edges along the alternating path ending at the
/// free vertex `v`.
fn augment_along(ws: &mut BlossomWorkspace, mut v: u32) {
    while v != NONE {
        let pv = ws.parent_of(v);
        let ppv = ws.mate[pv as usize];
        ws.mate[v as usize] = pv;
        ws.mate[pv as usize] = v;
        v = ppv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp_size;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::bipartite::random_bipartite;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(blossom_maximum_matching(&path(2)).len(), 1);
        assert_eq!(blossom_maximum_matching(&path(5)).len(), 2);
        assert_eq!(blossom_maximum_matching(&path(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&cycle(5)).len(), 2);
        assert_eq!(blossom_maximum_matching(&cycle(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&star(7)).len(), 1);
        assert_eq!(blossom_maximum_matching(&complete(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&complete(7)).len(), 3);
        assert_eq!(blossom_maximum_matching(&Graph::empty(4)).len(), 0);
    }

    #[test]
    fn odd_cycle_with_pendant_needs_blossom_reasoning() {
        // Triangle 0-1-2 plus pendant edge 2-3: maximum matching is 2.
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let m = blossom_maximum_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn two_triangles_joined_by_a_bridge() {
        // Classic blossom test: two triangles {0,1,2} and {3,4,5} joined by
        // the bridge 2-3. Maximum matching is 3.
        let g = Graph::from_pairs(
            6,
            vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
        .unwrap();
        assert_eq!(blossom_maximum_matching(&g).len(), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph (10 vertices, 15 edges) has a perfect matching of size 5.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(u32, u32)> = outer
            .iter()
            .chain(spokes.iter())
            .chain(inner.iter())
            .copied()
            .collect();
        let g = Graph::from_pairs(10, edges).unwrap();
        let m = blossom_maximum_matching(&g);
        assert_eq!(m.len(), 5);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..20 {
            let g = gnp(10, 0.3, &mut rng(seed));
            let blossom = blossom_maximum_matching(&g);
            assert!(blossom.is_valid_for(&g));
            let brute = brute_force_maximum_matching_size(&g);
            assert_eq!(blossom.len(), brute, "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_bipartite_graphs() {
        for seed in 0..5 {
            let bg = random_bipartite(30, 30, 0.08, &mut rng(seed + 50));
            let hk = hopcroft_karp_size(&bg);
            let bl = blossom_maximum_matching(&bg.to_graph()).len();
            assert_eq!(hk, bl, "seed {seed}");
        }
    }

    #[test]
    fn larger_random_graph_is_consistent_with_maximality_bound() {
        let mut r = rng(99);
        let g = gnp(300, 0.02, &mut r);
        let maximum = blossom_maximum_matching(&g);
        assert!(maximum.is_valid_for(&g));
        let maximal = crate::greedy::maximal_matching(&g);
        // maximum >= maximal >= maximum / 2
        assert!(maximum.len() >= maximal.len());
        assert!(2 * maximal.len() >= maximum.len());
    }

    #[test]
    fn workspace_reuse_across_solves_is_equivalent_and_reset_free() {
        // One workspace, many graphs: outputs must equal fresh-workspace
        // solves, with zero O(n) resets ever performed.
        let mut ws = BlossomWorkspace::new();
        for seed in 0..10 {
            let g = gnp(60, 0.06, &mut rng(seed + 500));
            let reused = blossom_maximum_matching_with(&g, &mut ws);
            let fresh = blossom_maximum_matching(&g);
            assert_eq!(reused, fresh, "seed {seed}");
        }
        assert!(ws.searches() > 0);
        assert_eq!(ws.full_resets(), 0);
    }

    #[test]
    fn warm_start_preserves_maximum_size() {
        for seed in 0..10 {
            let g = gnp(50, 0.08, &mut rng(seed + 900));
            let adj = Csr::from_ref(&g);
            let cold = blossom_maximum_matching(&g);
            // Warm-start from a maximal matching of the same graph.
            let warm_seed = crate::greedy::maximal_matching(&g);
            let mut ws = BlossomWorkspace::new();
            let warm = Matching::from_edges(blossom_on_csr(&adj, &mut ws, warm_seed.edges()));
            assert_eq!(warm.len(), cold.len(), "seed {seed}");
            assert!(warm.is_valid_for(&g));
        }
    }
}
