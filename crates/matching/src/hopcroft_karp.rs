//! Hopcroft–Karp maximum matching for bipartite graphs in `O(m sqrt(n))`.
//!
//! This is the workhorse used by the matching coreset on bipartite instances
//! (all of the paper's hard distributions are bipartite) — Theorem 1 only
//! requires *some* maximum matching of each piece, and Hopcroft–Karp provides
//! it fast enough for the large-n experiments.

use graph::bipartite::LeftCsr;
use graph::{BipartiteGraph, VertexId};
use std::collections::VecDeque;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Computes a maximum matching of the bipartite graph, returned as
/// `(left, right)` pairs.
///
/// The left-side adjacency is built once as a flat CSR
/// ([`BipartiteGraph::left_csr`]) — one contiguous allocation instead of the
/// per-call `Vec<Vec<_>>` rebuild.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Vec<(VertexId, VertexId)> {
    let left_n = g.left_n();
    let right_n = g.right_n();
    let adj = g.left_csr();

    // pair_left[l] = right partner of l (or NIL); pair_right[r] = left partner.
    let mut pair_left = vec![NIL; left_n];
    let mut pair_right = vec![NIL; right_n];
    let mut dist = vec![INF; left_n];

    loop {
        if !bfs(&adj, &pair_left, &pair_right, &mut dist) {
            break;
        }
        let mut augmented = false;
        for l in 0..left_n {
            if pair_left[l] == NIL && dfs(l, &adj, &mut pair_left, &mut pair_right, &mut dist) {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }

    (0..left_n)
        .filter(|&l| pair_left[l] != NIL)
        .map(|l| (l as VertexId, pair_left[l]))
        .collect()
}

/// Computes only the maximum matching *size* (avoids materialising the pairs).
pub fn hopcroft_karp_size(g: &BipartiteGraph) -> usize {
    hopcroft_karp(g).len()
}

fn bfs(adj: &LeftCsr, pair_left: &[u32], pair_right: &[u32], dist: &mut [u32]) -> bool {
    let mut queue = VecDeque::new();
    for (l, &p) in pair_left.iter().enumerate() {
        if p == NIL {
            dist[l] = 0;
            queue.push_back(l as u32);
        } else {
            dist[l] = INF;
        }
    }
    let mut found_augmenting = false;
    while let Some(l) = queue.pop_front() {
        for &r in adj.neighbors(l as usize) {
            let next = pair_right[r as usize];
            if next == NIL {
                found_augmenting = true;
            } else if dist[next as usize] == INF {
                dist[next as usize] = dist[l as usize] + 1;
                queue.push_back(next);
            }
        }
    }
    found_augmenting
}

fn dfs(
    l: usize,
    adj: &LeftCsr,
    pair_left: &mut [u32],
    pair_right: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for i in 0..adj.degree(l) {
        let r = adj.neighbors(l)[i] as usize;
        let next = pair_right[r];
        let extends = if next == NIL {
            true
        } else if dist[next as usize] == dist[l] + 1 {
            dfs(next as usize, adj, pair_left, pair_right, dist)
        } else {
            false
        };
        if extends {
            pair_left[l] = r as u32;
            pair_right[r] = l as u32;
            return true;
        }
    }
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::bipartite::{planted_matching_bipartite, random_bipartite};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn assert_is_matching(pairs: &[(VertexId, VertexId)]) {
        let lefts: HashSet<_> = pairs.iter().map(|&(l, _)| l).collect();
        let rights: HashSet<_> = pairs.iter().map(|&(_, r)| r).collect();
        assert_eq!(lefts.len(), pairs.len(), "left endpoints repeat");
        assert_eq!(rights.len(), pairs.len(), "right endpoints repeat");
    }

    #[test]
    fn tiny_cases() {
        // Empty graph.
        let g = BipartiteGraph::empty(3, 3);
        assert!(hopcroft_karp(&g).is_empty());

        // Single edge.
        let g = BipartiteGraph::from_pairs(2, 2, vec![(0, 1)]).unwrap();
        assert_eq!(hopcroft_karp(&g), vec![(0, 1)]);

        // Perfect matching on a 3x3 "crown".
        let g =
            BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)])
                .unwrap();
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 3);
        assert_is_matching(&m);
    }

    #[test]
    fn star_is_limited_by_the_centre() {
        // One left vertex connected to many right vertices: matching size 1.
        let g = BipartiteGraph::from_pairs(1, 10, (0..10).map(|r| (0, r))).unwrap();
        assert_eq!(hopcroft_karp_size(&g), 1);
        // Many left vertices all pointing at one right vertex: size 1.
        let g = BipartiteGraph::from_pairs(10, 1, (0..10).map(|l| (l, 0))).unwrap();
        assert_eq!(hopcroft_karp_size(&g), 1);
    }

    #[test]
    fn hall_violator_limits_matching() {
        // 3 left vertices whose joint neighbourhood is just 2 right vertices.
        let g =
            BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
                .unwrap();
        assert_eq!(hopcroft_karp_size(&g), 2);
    }

    #[test]
    fn planted_matching_is_found() {
        for seed in 0..3 {
            let (g, planted) = planted_matching_bipartite(120, 0.02, &mut rng(seed));
            let m = hopcroft_karp(&g);
            assert_eq!(
                m.len(),
                planted.len(),
                "planted perfect matching must be recovered in size"
            );
            assert_is_matching(&m);
        }
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..10 {
            let g = random_bipartite(7, 7, 0.3, &mut rng(seed));
            let hk = hopcroft_karp_size(&g);
            let brute = brute_force_maximum_matching_size(&g.to_graph());
            assert_eq!(hk, brute, "seed {seed}");
        }
    }

    #[test]
    fn output_edges_exist_in_graph() {
        let g = random_bipartite(40, 40, 0.08, &mut rng(7));
        let edge_set: HashSet<_> = g.edges().iter().copied().collect();
        for pair in hopcroft_karp(&g) {
            assert!(edge_set.contains(&pair));
        }
    }
}
