//! Hopcroft–Karp maximum matching for bipartite graphs in `O(m sqrt(n))`.
//!
//! This is the workhorse used by the matching coreset on bipartite instances
//! (all of the paper's hard distributions are bipartite) — Theorem 1 only
//! requires *some* maximum matching of each piece, and Hopcroft–Karp provides
//! it fast enough for the large-n experiments.
//!
//! Two front ends share the same BFS/DFS phase machinery:
//!
//! * [`hopcroft_karp`] / [`hopcroft_karp_size`] operate on an explicit
//!   [`BipartiteGraph`] via its flat [`BipartiteGraph::left_csr`].
//! * [`hopcroft_karp_on_csr`] is the fused path used by the matching
//!   engine's `Auto` dispatch: it runs directly on a general-graph [`Csr`]
//!   plus the 2-colouring that proved bipartiteness, so no intermediate
//!   `BipartiteGraph` (or `(left, right)` pair vector) is ever materialized.

use graph::bipartite::LeftCsr;
use graph::{BipartiteGraph, Csr, Edge, VertexId};
use std::collections::VecDeque;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Runs the phase loop on a left-CSR, returning `pair_left`.
fn solve_pairs(g: &BipartiteGraph) -> Vec<u32> {
    let left_n = g.left_n();
    let right_n = g.right_n();
    let adj = g.left_csr();

    // pair_left[l] = right partner of l (or NIL); pair_right[r] = left partner.
    let mut pair_left = vec![NIL; left_n];
    let mut pair_right = vec![NIL; right_n];
    let mut dist = vec![INF; left_n];
    let mut stack = Vec::new();

    loop {
        if !bfs(&adj, &pair_left, &pair_right, &mut dist) {
            break;
        }
        let mut augmented = false;
        for l in 0..left_n {
            if pair_left[l] == NIL
                && dfs(
                    l,
                    &adj,
                    &mut pair_left,
                    &mut pair_right,
                    &mut dist,
                    &mut stack,
                )
            {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }
    pair_left
}

/// Computes a maximum matching of the bipartite graph, returned as
/// `(left, right)` pairs.
///
/// The left-side adjacency is built once as a flat CSR
/// ([`BipartiteGraph::left_csr`]) — one contiguous allocation instead of the
/// per-call `Vec<Vec<_>>` rebuild.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Vec<(VertexId, VertexId)> {
    let pair_left = solve_pairs(g);
    (0..g.left_n())
        .filter(|&l| pair_left[l] != NIL)
        .map(|l| (l as VertexId, pair_left[l]))
        .collect()
}

/// Computes only the maximum matching *size*: the matched entries of the
/// internal `pair_left` array are counted directly, without materialising the
/// `(left, right)` pair vector that [`hopcroft_karp`] returns.
pub fn hopcroft_karp_size(g: &BipartiteGraph) -> usize {
    solve_pairs(g).iter().filter(|&&p| p != NIL).count()
}

/// Maximum matching of a bipartite *general-graph* CSR, driven by a proper
/// 2-colouring (`color[v] ∈ {0, 1}`, colour-0 vertices forming the left
/// side). This is the fused dispatch path: the same [`Csr`] that the
/// bipartiteness check walked is solved directly — no `BipartiteGraph`, no
/// local-id relabeling, no pair-vector round trip.
///
/// `warm` optionally seeds the matching with vertex-disjoint edges of the
/// graph (each necessarily joining the two colour classes); Hopcroft–Karp's
/// phases then start from that matching instead of the empty one, which can
/// only reduce the number of phases, never the returned size. Warm edges
/// that are not edges of the graph are skipped (debug builds assert).
/// Returns matched edges in ascending left-vertex order.
pub fn hopcroft_karp_on_csr(adj: &Csr, color: &[u8], warm: &[Edge]) -> Vec<Edge> {
    let n = adj.n();
    debug_assert_eq!(color.len(), n);
    // pair[v] = matched partner of v (either side), or NIL. Warm edges that
    // are not edges of this graph are skipped (not just debug-asserted): a
    // foreign edge seeded into `pair` would survive into the output and make
    // it an invalid matching.
    let mut pair = vec![NIL; n];
    for e in warm {
        if !adj.has_edge(e.u, e.v) {
            debug_assert!(false, "warm edge {e:?} does not exist in the graph");
            continue;
        }
        debug_assert_ne!(color[e.u as usize], color[e.v as usize]);
        if pair[e.u as usize] == NIL && pair[e.v as usize] == NIL {
            pair[e.u as usize] = e.v;
            pair[e.v as usize] = e.u;
        }
    }
    let lefts: Vec<u32> = (0..n as u32).filter(|&v| color[v as usize] == 0).collect();
    // dist is indexed by vertex id but only consulted for left vertices.
    let mut dist = vec![INF; n];
    let mut stack = Vec::new();

    loop {
        if !bfs_csr(adj, &lefts, &pair, &mut dist) {
            break;
        }
        let mut augmented = false;
        for &l in &lefts {
            if pair[l as usize] == NIL && dfs_csr(l, adj, &mut pair, &mut dist, &mut stack) {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }

    lefts
        .into_iter()
        .filter(|&l| pair[l as usize] != NIL)
        .map(|l| Edge::new(l, pair[l as usize]))
        .collect()
}

fn bfs(adj: &LeftCsr, pair_left: &[u32], pair_right: &[u32], dist: &mut [u32]) -> bool {
    let mut queue = VecDeque::new();
    for (l, &p) in pair_left.iter().enumerate() {
        if p == NIL {
            dist[l] = 0;
            queue.push_back(l as u32);
        } else {
            dist[l] = INF;
        }
    }
    let mut found_augmenting = false;
    while let Some(l) = queue.pop_front() {
        for &r in adj.neighbors(l as usize) {
            let next = pair_right[r as usize];
            if next == NIL {
                found_augmenting = true;
            } else if dist[next as usize] == INF {
                dist[next as usize] = dist[l as usize] + 1;
                queue.push_back(next);
            }
        }
    }
    found_augmenting
}

/// One stack frame of the iterative alternating-path DFS: the left vertex,
/// the next neighbour index to try, and the right vertex currently descended
/// through (to flip on success).
type DfsFrame = (u32, u32, u32);

fn dfs(
    l: usize,
    adj: &LeftCsr,
    pair_left: &mut [u32],
    pair_right: &mut [u32],
    dist: &mut [u32],
    stack: &mut Vec<DfsFrame>,
) -> bool {
    // Iterative version of the classic recursion (identical traversal order
    // and output); augmenting paths grow with the phase number, so deep
    // instances must not consume call stack.
    stack.clear();
    stack.push((l as u32, 0, NIL));
    loop {
        let depth = stack.len() - 1;
        let (v, mut i, _) = stack[depth];
        let neighbors = adj.neighbors(v as usize);
        let mut descended = false;
        while (i as usize) < neighbors.len() {
            let r = neighbors[i as usize];
            i += 1;
            let next = pair_right[r as usize];
            if next == NIL {
                // Free right vertex: flip the whole alternating path.
                stack[depth].2 = r;
                for &(lv, _, rv) in stack.iter().rev() {
                    pair_left[lv as usize] = rv;
                    pair_right[rv as usize] = lv;
                }
                return true;
            }
            if dist[next as usize] == dist[v as usize] + 1 {
                stack[depth] = (v, i, r);
                stack.push((next, 0, NIL));
                descended = true;
                break;
            }
        }
        if descended {
            continue;
        }
        dist[v as usize] = INF;
        stack.pop();
        if stack.is_empty() {
            return false;
        }
    }
}

/// BFS phase over the fused representation: left vertices and their partners
/// live in the same id space, `pair` covers both sides.
fn bfs_csr(adj: &Csr, lefts: &[u32], pair: &[u32], dist: &mut [u32]) -> bool {
    let mut queue = VecDeque::new();
    for &l in lefts {
        if pair[l as usize] == NIL {
            dist[l as usize] = 0;
            queue.push_back(l);
        } else {
            dist[l as usize] = INF;
        }
    }
    let mut found_augmenting = false;
    while let Some(l) = queue.pop_front() {
        for &r in adj.neighbors(l) {
            let next = pair[r as usize];
            if next == NIL {
                found_augmenting = true;
            } else if dist[next as usize] == INF {
                dist[next as usize] = dist[l as usize] + 1;
                queue.push_back(next);
            }
        }
    }
    found_augmenting
}

fn dfs_csr(
    l: u32,
    adj: &Csr,
    pair: &mut [u32],
    dist: &mut [u32],
    stack: &mut Vec<DfsFrame>,
) -> bool {
    // Iterative alternating-path DFS over the fused representation (same
    // traversal as the recursive classic; see `dfs`).
    stack.clear();
    stack.push((l, 0, NIL));
    loop {
        let depth = stack.len() - 1;
        let (v, mut i, _) = stack[depth];
        let neighbors = adj.neighbors(v);
        let mut descended = false;
        while (i as usize) < neighbors.len() {
            let r = neighbors[i as usize];
            i += 1;
            let next = pair[r as usize];
            if next == NIL {
                stack[depth].2 = r;
                for &(lv, _, rv) in stack.iter().rev() {
                    pair[lv as usize] = rv;
                    pair[rv as usize] = lv;
                }
                return true;
            }
            if dist[next as usize] == dist[v as usize] + 1 {
                stack[depth] = (v, i, r);
                stack.push((next, 0, NIL));
                descended = true;
                break;
            }
        }
        if descended {
            continue;
        }
        dist[v as usize] = INF;
        stack.pop();
        if stack.is_empty() {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::bipartite::{planted_matching_bipartite, random_bipartite};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn assert_is_matching(pairs: &[(VertexId, VertexId)]) {
        let lefts: HashSet<_> = pairs.iter().map(|&(l, _)| l).collect();
        let rights: HashSet<_> = pairs.iter().map(|&(_, r)| r).collect();
        assert_eq!(lefts.len(), pairs.len(), "left endpoints repeat");
        assert_eq!(rights.len(), pairs.len(), "right endpoints repeat");
    }

    #[test]
    fn tiny_cases() {
        // Empty graph.
        let g = BipartiteGraph::empty(3, 3);
        assert!(hopcroft_karp(&g).is_empty());

        // Single edge.
        let g = BipartiteGraph::from_pairs(2, 2, vec![(0, 1)]).unwrap();
        assert_eq!(hopcroft_karp(&g), vec![(0, 1)]);

        // Perfect matching on a 3x3 "crown".
        let g =
            BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)])
                .unwrap();
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 3);
        assert_is_matching(&m);
    }

    #[test]
    fn star_is_limited_by_the_centre() {
        // One left vertex connected to many right vertices: matching size 1.
        let g = BipartiteGraph::from_pairs(1, 10, (0..10).map(|r| (0, r))).unwrap();
        assert_eq!(hopcroft_karp_size(&g), 1);
        // Many left vertices all pointing at one right vertex: size 1.
        let g = BipartiteGraph::from_pairs(10, 1, (0..10).map(|l| (l, 0))).unwrap();
        assert_eq!(hopcroft_karp_size(&g), 1);
    }

    #[test]
    fn hall_violator_limits_matching() {
        // 3 left vertices whose joint neighbourhood is just 2 right vertices.
        let g =
            BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
                .unwrap();
        assert_eq!(hopcroft_karp_size(&g), 2);
    }

    #[test]
    fn planted_matching_is_found() {
        for seed in 0..3 {
            let (g, planted) = planted_matching_bipartite(120, 0.02, &mut rng(seed));
            let m = hopcroft_karp(&g);
            assert_eq!(
                m.len(),
                planted.len(),
                "planted perfect matching must be recovered in size"
            );
            assert_is_matching(&m);
        }
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..10 {
            let g = random_bipartite(7, 7, 0.3, &mut rng(seed));
            let hk = hopcroft_karp_size(&g);
            let brute = brute_force_maximum_matching_size(&g.to_graph());
            assert_eq!(hk, brute, "seed {seed}");
        }
    }

    #[test]
    fn size_agrees_with_pair_materialization() {
        for seed in 0..5 {
            let g = random_bipartite(25, 25, 0.1, &mut rng(seed + 40));
            assert_eq!(hopcroft_karp_size(&g), hopcroft_karp(&g).len(), "{seed}");
        }
    }

    #[test]
    fn output_edges_exist_in_graph() {
        let g = random_bipartite(40, 40, 0.08, &mut rng(7));
        let edge_set: HashSet<_> = g.edges().iter().copied().collect();
        for pair in hopcroft_karp(&g) {
            assert!(edge_set.contains(&pair));
        }
    }

    #[test]
    fn fused_csr_path_matches_bipartite_path() {
        for seed in 0..10 {
            let bg = random_bipartite(30, 30, 0.08, &mut rng(seed + 300));
            // The side-agnostic encoding: right ids offset by left_n, so the
            // canonical colouring is 0 for v < left_n and 1 otherwise.
            let g = bg.to_graph();
            let adj = Csr::from_ref(&g);
            let color: Vec<u8> = (0..g.n()).map(|v| u8::from(v >= bg.left_n())).collect();
            let fused = hopcroft_karp_on_csr(&adj, &color, &[]);
            assert_eq!(fused.len(), hopcroft_karp_size(&bg), "seed {seed}");
            let edge_set: HashSet<_> = g.edges().iter().copied().collect();
            assert!(fused.iter().all(|e| edge_set.contains(e)));
        }
    }

    #[test]
    fn fused_csr_warm_start_keeps_maximum_size() {
        for seed in 0..5 {
            let bg = random_bipartite(40, 40, 0.06, &mut rng(seed + 700));
            let g = bg.to_graph();
            let adj = Csr::from_ref(&g);
            let color: Vec<u8> = (0..g.n()).map(|v| u8::from(v >= bg.left_n())).collect();
            let cold = hopcroft_karp_on_csr(&adj, &color, &[]);
            let warm_seed = crate::greedy::maximal_matching(&g);
            let warm = hopcroft_karp_on_csr(&adj, &color, warm_seed.edges());
            assert_eq!(cold.len(), warm.len(), "seed {seed}");
        }
    }
}
