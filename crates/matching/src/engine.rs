//! The maximum-matching engine: compaction + fused dispatch + warm starts.
//!
//! [`MatchingEngine`] is the solver hot path behind
//! [`maximum_matching`](crate::maximum::maximum_matching) and the protocol
//! layers. One solve performs exactly these steps:
//!
//! 1. **Vertex compaction** — relabel the input onto its non-isolated
//!    vertices with the engine's reusable
//!    [`VertexCompactor`]. The paper's regime is
//!    sparse pieces over a huge vertex set (a `gnp(1e5, 2e-4)` piece under
//!    `k = 16` leaves ~29% of the ids isolated, and the coordinator's
//!    coreset union touches even fewer), so every downstream per-vertex
//!    array shrinks to the live vertex count.
//! 2. **One shared CSR** — built once from the compacted edges and walked by
//!    *both* the bipartiteness check
//!    ([`two_coloring_with_csr`]) and
//!    the solver. The old `Auto` dispatch built a CSR for the colouring,
//!    threw it away, then re-walked the edge list to materialize a
//!    `BipartiteGraph`; the fused path feeds Hopcroft–Karp
//!    ([`hopcroft_karp_on_csr`])
//!    straight from the colouring.
//! 3. **Epoch-reset blossom** — non-bipartite inputs run
//!    [`blossom_on_csr`] on the engine's
//!    reusable [`BlossomWorkspace`], whose per-search cost is proportional
//!    to the vertices the search touches (no `O(n)` clears, no per-search
//!    allocations).
//! 4. **Warm starts** — [`MatchingEngine::solve_warm`] seeds the solver with
//!    a known matching. The coordinator uses this to start the composed
//!    solve from the best per-machine coreset: the union of `k` matchings
//!    has maximum degree ≤ `k` and already contains a matching of size
//!    ≥ OPT/3 of the union, so most augmenting work is skipped.
//!
//! The free functions in [`crate::maximum`] run on a per-thread engine
//! (`thread_local`), so the protocol layers get cross-solve buffer reuse for
//! free: each worker thread of the parallel machine fan-out keeps one engine
//! for all the pieces it processes. Outputs are independent of workspace
//! history (the epoch stamps make stale state invisible), so this reuse is
//! invisible to the determinism guarantees.

use crate::blossom::blossom_on_csr;
use crate::hopcroft_karp::hopcroft_karp_on_csr;
use crate::matching::Matching;
use crate::maximum::{two_coloring_with_csr, MaximumMatchingAlgorithm};
use crate::workspace::BlossomWorkspace;
use graph::{Csr, Edge, GraphRef, VertexCompactor};
use std::cell::RefCell;

/// A reusable maximum-matching solver: compaction scratch + blossom
/// workspace, allocated once and reused across solves.
///
/// See the [module docs](self) for the solve pipeline. Construct one per
/// long-lived worker (or use the thread-local engine behind
/// [`crate::maximum::maximum_matching`]).
#[derive(Debug, Clone, Default)]
pub struct MatchingEngine {
    compactor: VertexCompactor,
    workspace: BlossomWorkspace,
}

impl MatchingEngine {
    /// Creates an engine with empty (lazily grown) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a maximum matching of `g` with automatic algorithm selection.
    pub fn solve<G: GraphRef + ?Sized>(&mut self, g: &G) -> Matching {
        self.solve_with(g, MaximumMatchingAlgorithm::Auto)
    }

    /// Computes a maximum matching of `g` with the requested algorithm.
    pub fn solve_with<G: GraphRef + ?Sized>(
        &mut self,
        g: &G,
        algorithm: MaximumMatchingAlgorithm,
    ) -> Matching {
        self.solve_inner(g, None, algorithm)
    }

    /// Computes a maximum matching of `g`, seeded with `warm`.
    ///
    /// `warm` must be a valid matching whose edges all belong to `g` (the
    /// coordinator's warm start — the best per-machine coreset — satisfies
    /// this by construction since every coreset is a subgraph of the union).
    /// Warm edges with an endpoint unknown to the compacted graph are
    /// ignored defensively. The result is a maximum matching of `g`; only
    /// the solver work changes, never the returned size.
    pub fn solve_warm<G: GraphRef + ?Sized>(
        &mut self,
        g: &G,
        warm: &Matching,
        algorithm: MaximumMatchingAlgorithm,
    ) -> Matching {
        self.solve_inner(g, Some(warm), algorithm)
    }

    /// Read access to the blossom workspace (search / full-reset counters).
    pub fn workspace(&self) -> &BlossomWorkspace {
        &self.workspace
    }

    /// Computes a maximum matching of the **concatenation** of `slices`
    /// (edge slices over the shared vertex set `0..n`), without materializing
    /// the union edge list — the coordinator's flat-composition fast path.
    ///
    /// For pairwise edge-disjoint slices (per-machine coresets of a
    /// partitioned graph always are) the answer is bit-identical to solving
    /// the first-occurrence-preserving union `Graph`: compaction sees the
    /// same edge sequence, so the solver does exactly the same work.
    /// Overlapping slices still yield a valid maximum matching of the
    /// underlying simple graph (duplicate edges are matching-neutral).
    pub fn solve_concat(
        &mut self,
        n: usize,
        slices: &[&[Edge]],
        warm: Option<&Matching>,
        algorithm: MaximumMatchingAlgorithm,
    ) -> Matching {
        if slices.iter().all(|s| s.is_empty()) {
            return Matching::new();
        }
        self.compactor.compact_concat(n, slices);
        self.solve_compacted(warm, algorithm)
    }

    fn solve_inner<G: GraphRef + ?Sized>(
        &mut self,
        g: &G,
        warm: Option<&Matching>,
        algorithm: MaximumMatchingAlgorithm,
    ) -> Matching {
        if g.is_empty() {
            // No edges: the empty matching is maximum, and HopcroftKarp's
            // "must be bipartite" contract holds vacuously.
            return Matching::new();
        }
        self.compactor.compact(g);
        self.solve_compacted(warm, algorithm)
    }

    /// The shared solve tail: one CSR from the compactor's relabeled edges,
    /// warm edges mapped through the same relabeling, fused dispatch, and
    /// expansion back to original ids.
    fn solve_compacted(
        &mut self,
        warm: Option<&Matching>,
        algorithm: MaximumMatchingAlgorithm,
    ) -> Matching {
        let adj = Csr::from_edges(self.compactor.n_local(), self.compactor.local_edges());
        let warm_local: Vec<Edge> = warm
            .map(|m| {
                m.edges()
                    .iter()
                    .filter_map(|&e| self.compactor.to_local_edge(e))
                    .collect()
            })
            .unwrap_or_default();

        let local_edges = match algorithm {
            MaximumMatchingAlgorithm::Blossom => {
                blossom_on_csr(&adj, &mut self.workspace, &warm_local)
            }
            MaximumMatchingAlgorithm::HopcroftKarp => {
                let color = two_coloring_with_csr(&adj)
                    .expect("HopcroftKarp requested on a non-bipartite graph");
                hopcroft_karp_on_csr(&adj, &color, &warm_local)
            }
            MaximumMatchingAlgorithm::Auto => match two_coloring_with_csr(&adj) {
                Some(color) => hopcroft_karp_on_csr(&adj, &color, &warm_local),
                None => blossom_on_csr(&adj, &mut self.workspace, &warm_local),
            },
        };
        Matching::from_edges(self.compactor.expand_edges(&local_edges))
    }
}

thread_local! {
    static THREAD_ENGINE: RefCell<MatchingEngine> = RefCell::new(MatchingEngine::new());
}

/// Runs `f` on the calling thread's reusable engine (falling back to a fresh
/// engine in the re-entrant case, which keeps the API panic-free).
pub(crate) fn with_thread_engine<T>(f: impl FnOnce(&mut MatchingEngine) -> T) -> T {
    THREAD_ENGINE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut engine) => f(&mut engine),
        Err(_) => f(&mut MatchingEngine::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::er::gnp;
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn engine_reuse_matches_fresh_solves_and_brute_force() {
        let mut engine = MatchingEngine::new();
        for seed in 0..15 {
            let g = gnp(12, 0.25, &mut rng(seed));
            let m = engine.solve(&g);
            assert!(m.is_valid_for(&g));
            assert_eq!(m.len(), brute_force_maximum_matching_size(&g), "{seed}");
        }
        assert_eq!(engine.workspace().full_resets(), 0);
    }

    #[test]
    fn matching_is_on_original_ids_after_compaction() {
        // Vertices live at sparse ids; the matching must come back on them.
        let g = Graph::from_pairs(1000, vec![(10, 990), (500, 600), (10, 500)]).unwrap();
        let mut engine = MatchingEngine::new();
        let m = engine.solve(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn zero_per_search_resets_across_many_solves() {
        // The epoch counters are the whole point: a long-lived engine must
        // never fall back to an O(n) clear. Force Blossom so searches run
        // even on bipartite draws.
        let mut engine = MatchingEngine::new();
        for seed in 0..20 {
            let g = gnp(300, 0.02, &mut rng(seed + 100));
            let m = engine.solve_with(&g, MaximumMatchingAlgorithm::Blossom);
            assert!(m.is_valid_for(&g));
        }
        assert!(
            engine.workspace().searches() > 0,
            "blossom must have run augmenting searches"
        );
        assert_eq!(
            engine.workspace().full_resets(),
            0,
            "no O(n) workspace reset may ever happen under epoch stamps"
        );
    }

    #[test]
    fn empty_graph_solves_to_empty_matching() {
        let mut engine = MatchingEngine::new();
        assert!(engine.solve(&Graph::empty(5)).is_empty());
        assert!(engine
            .solve_with(&Graph::empty(5), MaximumMatchingAlgorithm::HopcroftKarp)
            .is_empty());
    }

    #[test]
    fn concat_solve_is_bit_identical_to_union_solve_on_disjoint_slices() {
        // Edge-disjoint slices: a random partition of a graph's edges.
        use graph::PartitionedGraph;
        for seed in 0..6 {
            let g = gnp(200, 0.03, &mut rng(seed + 300));
            let part = PartitionedGraph::random(&g, 4, &mut rng(seed + 400)).unwrap();
            let views = part.views();
            let slices: Vec<&[Edge]> = views.iter().map(|v| v.edges()).collect();
            let union = part.reunite();
            for algorithm in [
                MaximumMatchingAlgorithm::Auto,
                MaximumMatchingAlgorithm::Blossom,
            ] {
                let by_union = MatchingEngine::new().solve_with(&union, algorithm);
                let by_concat = MatchingEngine::new().solve_concat(g.n(), &slices, None, algorithm);
                assert_eq!(by_union.edges(), by_concat.edges(), "seed {seed}");
            }
        }
    }

    #[test]
    fn concat_solve_of_empty_slices_is_empty() {
        let mut engine = MatchingEngine::new();
        let empty: &[Edge] = &[];
        assert!(engine
            .solve_concat(8, &[empty, empty], None, MaximumMatchingAlgorithm::Auto)
            .is_empty());
        assert!(engine
            .solve_concat(8, &[], None, MaximumMatchingAlgorithm::Auto)
            .is_empty());
    }

    #[test]
    fn warm_start_with_partially_unmapped_edges_is_ignored_gracefully() {
        // Warm matching mentions vertices isolated in g's compacted form:
        // those edges are skipped, the rest seed the solver.
        let g = Graph::from_pairs(10, vec![(0, 1), (2, 3)]).unwrap();
        let warm = Matching::from_edges(vec![Edge::new(0, 1), Edge::new(7, 8)]);
        let mut engine = MatchingEngine::new();
        let m = engine.solve_warm(&g, &warm, MaximumMatchingAlgorithm::Auto);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }
}
