//! Greedy maximal matchings.
//!
//! A *maximal* matching (no edge can be added) is a 2-approximation of the
//! maximum matching on a single graph, but the paper's Section 1.2 points out
//! that an *arbitrary* maximal matching is a poor composable coreset: under a
//! random k-partition an adversarially chosen maximal matching per machine
//! composes to only an `Ω(k)`-approximation. The experiments therefore need
//! maximal matchings under three edge orderings: the input order, a random
//! order, and an adversarial order supplied by a key function.

use crate::matching::Matching;
use graph::{Edge, GraphRef};
use rand::seq::SliceRandom;
use rand::Rng;

/// Greedy maximal matching scanning edges in input (edge-list) order.
///
/// Accepts any [`GraphRef`] — an owned `Graph` or a zero-copy `GraphView`
/// into a partition arena.
pub fn maximal_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
    greedy_over(g.n(), g.edges().iter().copied())
}

/// Greedy maximal matching over a uniformly random edge order.
pub fn maximal_matching_shuffled<G: GraphRef + ?Sized, R: Rng + ?Sized>(
    g: &G,
    rng: &mut R,
) -> Matching {
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges.shuffle(rng);
    greedy_over(g.n(), edges.into_iter())
}

/// Greedy maximal matching scanning edges in increasing order of `key`.
///
/// Passing a key that ranks "trap" edges first reproduces the adversarial
/// maximal matching of the paper's negative example; passing edge weight as a
/// *decreasing* key yields the classic greedy weighted matching (see
/// [`crate::weighted`]).
pub fn maximal_matching_by_key<G, K, F>(g: &G, mut key: F) -> Matching
where
    G: GraphRef + ?Sized,
    K: Ord,
    F: FnMut(&Edge) -> K,
{
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges.sort_by_key(|e| key(e));
    greedy_over(g.n(), edges.into_iter())
}

fn greedy_over(n: usize, edges: impl Iterator<Item = Edge>) -> Matching {
    let mut matched = vec![false; n];
    let mut m = Matching::new();
    for e in edges {
        m.try_add(e, &mut matched);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::er::gnp;
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn maximal_on_path() {
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let m = maximal_matching(&g);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
        assert!(!m.is_empty());
    }

    #[test]
    fn maximal_is_valid_and_maximal_on_random_graphs() {
        for seed in 0..5 {
            let mut r = rng(seed);
            let g = gnp(60, 0.08, &mut r);
            let m = maximal_matching(&g);
            assert!(m.is_valid_for(&g));
            assert!(m.is_maximal_in(&g));

            let ms = maximal_matching_shuffled(&g, &mut r);
            assert!(ms.is_valid_for(&g));
            assert!(ms.is_maximal_in(&g));
        }
    }

    #[test]
    fn maximal_is_half_of_maximum() {
        // A maximal matching is at least half the maximum matching.
        for seed in 0..5 {
            let mut r = rng(seed + 100);
            let g = gnp(14, 0.3, &mut r);
            let maximal = maximal_matching(&g).len();
            let maximum = brute_force_maximum_matching_size(&g);
            assert!(
                2 * maximal >= maximum,
                "maximal {maximal} vs maximum {maximum}"
            );
        }
    }

    #[test]
    fn by_key_prefers_low_key_edges() {
        // Star + pendant: edges (0,1), (1,2); key forces (0,1) first which
        // blocks (1,2); reversing the key picks (1,2)... both are maximal but
        // the chosen edge differs.
        let g = Graph::from_pairs(3, vec![(0, 1), (1, 2)]).unwrap();
        let prefer_01 = maximal_matching_by_key(&g, |e| if *e == Edge::new(0, 1) { 0 } else { 1 });
        assert_eq!(prefer_01.edges(), &[Edge::new(0, 1)]);
        let prefer_12 = maximal_matching_by_key(&g, |e| if *e == Edge::new(1, 2) { 0 } else { 1 });
        assert_eq!(prefer_12.edges(), &[Edge::new(1, 2)]);
    }

    #[test]
    fn empty_graph_yields_empty_matching() {
        let g = Graph::empty(5);
        assert!(maximal_matching(&g).is_empty());
        assert!(maximal_matching_shuffled(&g, &mut rng(1)).is_empty());
    }
}
