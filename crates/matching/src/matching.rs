//! The [`Matching`] type: a set of vertex-disjoint edges with validation
//! helpers used by every algorithm and by the coreset composition step.

use graph::{Edge, GraphRef, VertexId};
use std::collections::BTreeSet;
// Membership-only endpoint-disjointness checks below keep `HashSet` for O(1)
// probes; their iteration order is never observed, so hash nondeterminism
// cannot reach an output.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// A matching: a set of edges no two of which share an endpoint.
///
/// The structure does not borrow the graph it was computed from; validity
/// *with respect to a graph* (all edges present) is checked explicitly via
/// [`Matching::is_valid_for`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    edges: Vec<Edge>,
}

impl Matching {
    /// The empty matching.
    pub fn new() -> Self {
        Matching { edges: Vec::new() }
    }

    /// Builds a matching from edges, panicking if two edges share an endpoint.
    ///
    /// Use [`Matching::try_from_edges`] for a non-panicking variant.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        Self::try_from_edges(edges).expect("edges do not form a matching")
    }

    /// Builds a matching from edges, returning `None` if two edges share an
    /// endpoint.
    pub fn try_from_edges(edges: Vec<Edge>) -> Option<Self> {
        if edges_form_matching(&edges) {
            Some(Matching { edges })
        } else {
            None
        }
    }

    /// Number of edges in the matching.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the matching has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The matched edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the matching, returning its edges.
    #[inline]
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// The set of matched vertices, iterable in ascending order (`BTreeSet`
    /// so downstream consumers that surface the set stay deterministic).
    pub fn matched_vertices(&self) -> BTreeSet<VertexId> {
        let mut s = BTreeSet::new();
        for e in &self.edges {
            s.insert(e.u);
            s.insert(e.v);
        }
        s
    }

    /// Returns `true` if `v` is an endpoint of some matched edge.
    pub fn covers(&self, v: VertexId) -> bool {
        self.edges.iter().any(|e| e.is_incident(v))
    }

    /// Returns the partner of `v` in the matching, if matched.
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        self.edges
            .iter()
            .find(|e| e.is_incident(v))
            .map(|e| e.other(v))
    }

    /// A mate array indexed by vertex id (length `n`).
    pub fn mate_array(&self, n: usize) -> Vec<Option<VertexId>> {
        let mut mate = vec![None; n];
        for e in &self.edges {
            mate[e.u as usize] = Some(e.v);
            mate[e.v as usize] = Some(e.u);
        }
        mate
    }

    /// Adds an edge to the matching if neither endpoint is already matched;
    /// returns `true` on success. This is the elementary step of the paper's
    /// `GreedyMatch` process.
    pub fn try_add(&mut self, e: Edge, matched: &mut [bool]) -> bool {
        let (u, v) = (e.u as usize, e.v as usize);
        if matched[u] || matched[v] {
            return false;
        }
        matched[u] = true;
        matched[v] = true;
        self.edges.push(e);
        true
    }

    /// Checks that every matched edge is present in `g` and that the edges are
    /// pairwise disjoint (the latter is an invariant, re-checked defensively).
    pub fn is_valid_for<G: GraphRef + ?Sized>(&self, g: &G) -> bool {
        // Membership-only probe sets; order never observed.
        let edge_set: HashSet<Edge> = g.edges().iter().copied().collect(); // xtask: allow(hash-collections)
        let mut seen: HashSet<VertexId> = HashSet::new(); // xtask: allow(hash-collections)
        for e in &self.edges {
            if !edge_set.contains(e) {
                return false;
            }
            if !seen.insert(e.u) || !seen.insert(e.v) {
                return false;
            }
        }
        true
    }

    /// Checks maximality in `g`: no edge of `g` has both endpoints unmatched.
    pub fn is_maximal_in<G: GraphRef + ?Sized>(&self, g: &G) -> bool {
        let matched = self.matched_vertices();
        g.edges()
            .iter()
            .all(|e| matched.contains(&e.u) || matched.contains(&e.v))
    }
}

impl From<Vec<Edge>> for Matching {
    fn from(edges: Vec<Edge>) -> Self {
        Matching::from_edges(edges)
    }
}

/// Returns `true` if no two of `edges` share an endpoint — the matching
/// property, checkable on a borrowed slice without building a [`Matching`].
/// Composition uses this to screen warm-start candidates before cloning any
/// edge list.
pub fn edges_form_matching(edges: &[Edge]) -> bool {
    // Membership-only probe set; order never observed.
    let mut seen: HashSet<VertexId> = HashSet::with_capacity(edges.len() * 2); // xtask: allow(hash-collections)
    edges.iter().all(|e| seen.insert(e.u) && seen.insert(e.v))
}

/// Computes the exact maximum matching size of small graphs by exhaustive
/// search over edge subsets (exponential; intended for cross-checking the real
/// algorithms in tests, `m <= ~20`).
pub fn brute_force_maximum_matching_size<G: GraphRef + ?Sized>(g: &G) -> usize {
    fn recurse(edges: &[Edge], used: &mut Vec<bool>, idx: usize, size: usize, best: &mut usize) {
        *best = (*best).max(size);
        if idx == edges.len() {
            return;
        }
        // Prune: even taking every remaining edge cannot beat best.
        if size + (edges.len() - idx) <= *best {
            return;
        }
        let e = edges[idx];
        // Skip edge idx.
        recurse(edges, used, idx + 1, size, best);
        // Take edge idx if possible.
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            recurse(edges, used, idx + 1, size + 1, best);
            used[e.u as usize] = false;
            used[e.v as usize] = false;
        }
    }
    let mut best = 0;
    let mut used = vec![false; g.n()];
    recurse(g.edges(), &mut used, 0, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Graph;

    fn path4() -> Graph {
        Graph::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_matching() {
        let m = Matching::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.is_valid_for(&path4()));
        assert!(!m.is_maximal_in(&path4()));
    }

    #[test]
    fn from_edges_validates_disjointness() {
        assert!(Matching::try_from_edges(vec![Edge::new(0, 1), Edge::new(2, 3)]).is_some());
        assert!(Matching::try_from_edges(vec![Edge::new(0, 1), Edge::new(1, 2)]).is_none());
    }

    #[test]
    fn borrowed_matching_check_agrees_with_try_from_edges() {
        let good = vec![Edge::new(0, 1), Edge::new(2, 3)];
        let bad = vec![Edge::new(0, 1), Edge::new(1, 2)];
        assert!(edges_form_matching(&good));
        assert!(!edges_form_matching(&bad));
        assert!(edges_form_matching(&[]));
        assert_eq!(
            edges_form_matching(&good),
            Matching::try_from_edges(good.clone()).is_some()
        );
        assert_eq!(
            edges_form_matching(&bad),
            Matching::try_from_edges(bad.clone()).is_some()
        );
    }

    #[test]
    #[should_panic(expected = "do not form a matching")]
    fn from_edges_panics_on_conflict() {
        let _ = Matching::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn mates_and_coverage() {
        let m = Matching::from_edges(vec![Edge::new(0, 1), Edge::new(2, 3)]);
        assert!(m.covers(0));
        assert!(m.covers(3));
        assert!(!m.covers(4));
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(3), Some(2));
        assert_eq!(m.mate(7), None);
        let mates = m.mate_array(5);
        assert_eq!(mates[0], Some(1));
        assert_eq!(mates[4], None);
        assert_eq!(m.matched_vertices().len(), 4);
    }

    #[test]
    fn try_add_respects_matched_vertices() {
        let mut m = Matching::new();
        let mut matched = vec![false; 5];
        assert!(m.try_add(Edge::new(0, 1), &mut matched));
        assert!(!m.try_add(Edge::new(1, 2), &mut matched));
        assert!(m.try_add(Edge::new(3, 4), &mut matched));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn validity_and_maximality() {
        let g = path4();
        let m = Matching::from_edges(vec![Edge::new(1, 2)]);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));

        let m2 = Matching::from_edges(vec![Edge::new(0, 1)]);
        assert!(m2.is_valid_for(&g));
        assert!(!m2.is_maximal_in(&g), "edge (2,3) is still free");

        let foreign = Matching::from_edges(vec![Edge::new(0, 3)]);
        assert!(!foreign.is_valid_for(&g));
    }

    #[test]
    fn brute_force_on_small_graphs() {
        assert_eq!(brute_force_maximum_matching_size(&path4()), 2);
        let triangle = Graph::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(brute_force_maximum_matching_size(&triangle), 1);
        let two_triangles =
            Graph::from_pairs(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert_eq!(brute_force_maximum_matching_size(&two_triangles), 2);
        assert_eq!(brute_force_maximum_matching_size(&Graph::empty(3)), 0);
    }
}
