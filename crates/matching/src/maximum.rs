//! Front-end for maximum matching on arbitrary graphs.
//!
//! Theorem 1 of the paper lets every machine run *any* maximum-matching
//! algorithm on its piece. [`maximum_matching`] detects bipartiteness and
//! dispatches to Hopcroft–Karp when possible (much faster) and to the blossom
//! algorithm otherwise; [`MaximumMatchingAlgorithm`] lets callers force a
//! specific algorithm, which the experiments use to confirm that the coreset
//! quality is indeed independent of the algorithm choice.

use crate::blossom::blossom_maximum_matching;
use crate::hopcroft_karp::hopcroft_karp;
use crate::matching::Matching;
use graph::{BipartiteGraph, Csr, Edge, GraphRef, VertexId};
use std::collections::VecDeque;

/// Which maximum-matching algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaximumMatchingAlgorithm {
    /// Detect bipartiteness; use Hopcroft–Karp when bipartite, Blossom
    /// otherwise.
    #[default]
    Auto,
    /// Always run Edmonds' blossom algorithm.
    Blossom,
    /// Run Hopcroft–Karp on the graph's bipartition.
    ///
    /// # Panics
    ///
    /// The dispatcher panics if the graph is not bipartite.
    HopcroftKarp,
}

/// Computes a maximum matching of `g` using the requested algorithm.
///
/// Accepts any [`GraphRef`] — an owned `Graph` or a zero-copy `GraphView`.
pub fn maximum_matching_with<G: GraphRef + ?Sized>(
    g: &G,
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    match algorithm {
        MaximumMatchingAlgorithm::Blossom => blossom_maximum_matching(g),
        MaximumMatchingAlgorithm::HopcroftKarp => {
            let coloring =
                two_coloring(g).expect("HopcroftKarp requested on a non-bipartite graph");
            hopcroft_karp_on_coloring(g, &coloring)
        }
        MaximumMatchingAlgorithm::Auto => match two_coloring(g) {
            Some(coloring) => hopcroft_karp_on_coloring(g, &coloring),
            None => blossom_maximum_matching(g),
        },
    }
}

/// Computes a maximum matching of `g` with the default (auto) algorithm.
pub fn maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
    maximum_matching_with(g, MaximumMatchingAlgorithm::Auto)
}

/// Attempts to 2-colour the graph; returns `Some(color)` (0/1 per vertex) if
/// bipartite and `None` if an odd cycle exists. Isolated vertices get colour 0.
pub fn two_coloring<G: GraphRef + ?Sized>(g: &G) -> Option<Vec<u8>> {
    let adj = Csr::from_ref(g);
    let mut color = vec![u8::MAX; g.n()];
    let mut queue = VecDeque::new();
    for start in 0..g.n() {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &w in adj.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    queue.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Runs Hopcroft–Karp on a graph with a known 2-colouring and maps the result
/// back to the graph's own vertex ids.
fn hopcroft_karp_on_coloring<G: GraphRef + ?Sized>(g: &G, color: &[u8]) -> Matching {
    // Map colour-0 vertices to left ids and colour-1 vertices to right ids.
    let mut left_ids = Vec::new();
    let mut right_ids = Vec::new();
    let mut to_local = vec![0u32; g.n()];
    for v in 0..g.n() {
        if color[v] == 0 {
            to_local[v] = left_ids.len() as u32;
            left_ids.push(v as VertexId);
        } else {
            to_local[v] = right_ids.len() as u32;
            right_ids.push(v as VertexId);
        }
    }
    let pairs: Vec<(VertexId, VertexId)> = g
        .edges()
        .iter()
        .map(|e| {
            if color[e.u as usize] == 0 {
                (to_local[e.u as usize], to_local[e.v as usize])
            } else {
                (to_local[e.v as usize], to_local[e.u as usize])
            }
        })
        .collect();
    let bg = BipartiteGraph::from_pairs(left_ids.len(), right_ids.len(), pairs)
        .expect("local ids are in range by construction");
    let matched = hopcroft_karp(&bg);
    let edges = matched
        .into_iter()
        .map(|(l, r)| Edge::new(left_ids[l as usize], right_ids[r as usize]))
        .collect();
    Matching::from_edges(edges)
}

/// Converts a bipartite matching (left, right) pairs into a [`Matching`] over
/// the ids of [`BipartiteGraph::to_graph`] (right ids offset by `left_n`).
pub fn bipartite_pairs_to_matching(g: &BipartiteGraph, pairs: &[(VertexId, VertexId)]) -> Matching {
    let offset = g.left_n() as VertexId;
    Matching::from_edges(
        pairs
            .iter()
            .map(|&(l, r)| Edge::new(l, offset + r))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::er::gnp;
    use graph::gen::structured::{cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn two_coloring_detects_bipartiteness() {
        assert!(two_coloring(&path(6)).is_some());
        assert!(two_coloring(&cycle(6)).is_some());
        assert!(two_coloring(&cycle(5)).is_none());
        assert!(two_coloring(&star(4)).is_some());
        assert!(two_coloring(&Graph::empty(3)).is_some());
    }

    #[test]
    fn auto_matches_brute_force() {
        for seed in 0..15 {
            let g = gnp(11, 0.25, &mut rng(seed));
            let m = maximum_matching(&g);
            assert!(m.is_valid_for(&g));
            assert_eq!(
                m.len(),
                brute_force_maximum_matching_size(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn forced_algorithms_agree() {
        // Even cycles are bipartite so all three choices are legal.
        let g = cycle(8);
        let auto = maximum_matching_with(&g, MaximumMatchingAlgorithm::Auto).len();
        let hk = maximum_matching_with(&g, MaximumMatchingAlgorithm::HopcroftKarp).len();
        let bl = maximum_matching_with(&g, MaximumMatchingAlgorithm::Blossom).len();
        assert_eq!(auto, 4);
        assert_eq!(hk, 4);
        assert_eq!(bl, 4);
    }

    #[test]
    #[should_panic(expected = "non-bipartite")]
    fn hopcroft_karp_on_odd_cycle_panics() {
        let _ = maximum_matching_with(&cycle(5), MaximumMatchingAlgorithm::HopcroftKarp);
    }

    #[test]
    fn bipartite_pairs_conversion() {
        let bg = BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (1, 2)]).unwrap();
        let m = bipartite_pairs_to_matching(&bg, &[(0, 0), (1, 2)]);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&bg.to_graph()));
    }

    #[test]
    fn auto_uses_blossom_on_odd_structures_correctly() {
        // Two triangles sharing nothing: non-bipartite, maximum matching 2.
        let g = Graph::from_pairs(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert_eq!(maximum_matching(&g).len(), 2);
    }
}
