//! Front-end for maximum matching on arbitrary graphs.
//!
//! Theorem 1 of the paper lets every machine run *any* maximum-matching
//! algorithm on its piece. [`maximum_matching`] detects bipartiteness and
//! dispatches to Hopcroft–Karp when possible (much faster) and to the blossom
//! algorithm otherwise; [`MaximumMatchingAlgorithm`] lets callers force a
//! specific algorithm, which the experiments use to confirm that the coreset
//! quality is indeed independent of the algorithm choice.
//!
//! All of the free functions here route through a per-thread
//! [`MatchingEngine`](crate::engine::MatchingEngine): each solve compacts the
//! graph onto its non-isolated vertices, builds **one** CSR shared by the
//! bipartiteness check and the solver, and reuses the engine's epoch-reset
//! [`BlossomWorkspace`](crate::workspace::BlossomWorkspace) across solves.
//! [`maximum_matching_warm`] additionally seeds the solver with a known
//! matching (the coordinator warm-starts the composed solve from the best
//! per-machine coreset).

use crate::engine::with_thread_engine;
use crate::matching::Matching;
use graph::{BipartiteGraph, Csr, Edge, GraphRef, VertexId};
use std::collections::VecDeque;

/// Which maximum-matching algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaximumMatchingAlgorithm {
    /// Detect bipartiteness; use Hopcroft–Karp when bipartite, Blossom
    /// otherwise.
    #[default]
    Auto,
    /// Always run Edmonds' blossom algorithm.
    Blossom,
    /// Run Hopcroft–Karp on the graph's bipartition.
    ///
    /// # Panics
    ///
    /// The dispatcher panics if the graph is not bipartite.
    HopcroftKarp,
}

/// Computes a maximum matching of `g` using the requested algorithm.
///
/// Accepts any [`GraphRef`] — an owned `Graph` or a zero-copy `GraphView` —
/// and runs on the calling thread's reusable [`crate::engine::MatchingEngine`].
pub fn maximum_matching_with<G: GraphRef + ?Sized>(
    g: &G,
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    with_thread_engine(|engine| engine.solve_with(g, algorithm))
}

/// Computes a maximum matching of `g` with the default (auto) algorithm.
pub fn maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
    maximum_matching_with(g, MaximumMatchingAlgorithm::Auto)
}

/// Computes a maximum matching of `g`, warm-started from `warm` — a valid
/// matching whose edges all belong to `g`. The warm start can only reduce
/// solver work (fewer augmenting searches / phases); the returned matching is
/// still maximum, so its *size* is identical to a cold solve.
pub fn maximum_matching_warm<G: GraphRef + ?Sized>(
    g: &G,
    warm: &Matching,
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    with_thread_engine(|engine| engine.solve_warm(g, warm, algorithm))
}

/// Computes a maximum matching of the **concatenation** of `slices` (edge
/// slices over the shared vertex set `0..n`), optionally warm-started,
/// without materializing the union edge list — the coordinator's
/// flat-composition fast path (see
/// [`crate::engine::MatchingEngine::solve_concat`] for the bit-identity
/// guarantee on edge-disjoint slices).
pub fn maximum_matching_concat(
    n: usize,
    slices: &[&[Edge]],
    warm: Option<&Matching>,
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    with_thread_engine(|engine| engine.solve_concat(n, slices, warm, algorithm))
}

/// Attempts to 2-colour the graph; returns `Some(color)` (0/1 per vertex) if
/// bipartite and `None` if an odd cycle exists. Isolated vertices get colour 0.
///
/// Builds a [`Csr`] internally; callers that already hold the graph's CSR
/// (the engine's fused dispatch) should use [`two_coloring_with_csr`].
pub fn two_coloring<G: GraphRef + ?Sized>(g: &G) -> Option<Vec<u8>> {
    two_coloring_with_csr(&Csr::from_ref(g))
}

/// [`two_coloring`] over a caller-supplied CSR, so `Auto` dispatch can share
/// one adjacency build between the bipartiteness check and the solver.
///
/// Isolated vertices are coloured 0 directly, without the queue push/pop a
/// BFS seeding would cost (sparse pieces of a large partition are mostly
/// isolated vertices).
pub fn two_coloring_with_csr(adj: &Csr) -> Option<Vec<u8>> {
    let n = adj.n();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        if adj.degree(start as VertexId) == 0 {
            continue;
        }
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &w in adj.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    queue.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Converts a bipartite matching (left, right) pairs into a [`Matching`] over
/// the ids of [`BipartiteGraph::to_graph`] (right ids offset by `left_n`).
pub fn bipartite_pairs_to_matching(g: &BipartiteGraph, pairs: &[(VertexId, VertexId)]) -> Matching {
    let offset = g.left_n() as VertexId;
    Matching::from_edges(
        pairs
            .iter()
            .map(|&(l, r)| Edge::new(l, offset + r))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::brute_force_maximum_matching_size;
    use graph::gen::er::gnp;
    use graph::gen::structured::{cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn two_coloring_detects_bipartiteness() {
        assert!(two_coloring(&path(6)).is_some());
        assert!(two_coloring(&cycle(6)).is_some());
        assert!(two_coloring(&cycle(5)).is_none());
        assert!(two_coloring(&star(4)).is_some());
        assert!(two_coloring(&Graph::empty(3)).is_some());
    }

    #[test]
    fn two_coloring_colors_isolated_vertices_zero() {
        // Edge (1, 2) plus isolated vertices 0 and 3.
        let g = Graph::from_pairs(4, vec![(1, 2)]).unwrap();
        let color = two_coloring(&g).unwrap();
        assert_eq!(color[0], 0);
        assert_eq!(color[3], 0);
        assert_ne!(color[1], color[2]);
    }

    #[test]
    fn two_coloring_with_csr_matches_graph_entry_point() {
        for seed in 0..10 {
            let g = gnp(40, 0.06, &mut rng(seed + 10));
            let adj = Csr::from_ref(&g);
            assert_eq!(two_coloring(&g), two_coloring_with_csr(&adj), "{seed}");
        }
    }

    #[test]
    fn auto_matches_brute_force() {
        for seed in 0..15 {
            let g = gnp(11, 0.25, &mut rng(seed));
            let m = maximum_matching(&g);
            assert!(m.is_valid_for(&g));
            assert_eq!(
                m.len(),
                brute_force_maximum_matching_size(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn forced_algorithms_agree() {
        // Even cycles are bipartite so all three choices are legal.
        let g = cycle(8);
        let auto = maximum_matching_with(&g, MaximumMatchingAlgorithm::Auto).len();
        let hk = maximum_matching_with(&g, MaximumMatchingAlgorithm::HopcroftKarp).len();
        let bl = maximum_matching_with(&g, MaximumMatchingAlgorithm::Blossom).len();
        assert_eq!(auto, 4);
        assert_eq!(hk, 4);
        assert_eq!(bl, 4);
    }

    #[test]
    #[should_panic(expected = "non-bipartite")]
    fn hopcroft_karp_on_odd_cycle_panics() {
        let _ = maximum_matching_with(&cycle(5), MaximumMatchingAlgorithm::HopcroftKarp);
    }

    #[test]
    fn bipartite_pairs_conversion() {
        let bg = BipartiteGraph::from_pairs(3, 3, vec![(0, 0), (1, 2)]).unwrap();
        let m = bipartite_pairs_to_matching(&bg, &[(0, 0), (1, 2)]);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&bg.to_graph()));
    }

    #[test]
    fn auto_uses_blossom_on_odd_structures_correctly() {
        // Two triangles sharing nothing: non-bipartite, maximum matching 2.
        let g = Graph::from_pairs(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert_eq!(maximum_matching(&g).len(), 2);
    }

    #[test]
    fn warm_start_returns_same_size_as_cold() {
        for seed in 0..10 {
            let g = gnp(60, 0.05, &mut rng(seed + 2000));
            let cold = maximum_matching(&g);
            let warm_seed = crate::greedy::maximal_matching(&g);
            let warm = maximum_matching_warm(&g, &warm_seed, MaximumMatchingAlgorithm::Auto);
            assert_eq!(cold.len(), warm.len(), "seed {seed}");
            assert!(warm.is_valid_for(&g));
        }
    }
}
