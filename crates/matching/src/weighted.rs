//! Weighted matching: greedy 1/2-approximation and the Crouch–Stubbs
//! weight-class reduction.
//!
//! The paper's Section 1.1 notes that its (unweighted) matching coreset
//! extends to weighted graphs "using the Crouch–Stubbs technique \[22\] ...
//! with a factor 2 loss in approximation and an extra O(log n) term in the
//! space". The technique partitions edges into geometric weight classes, runs
//! an unweighted matching per class, and combines the class matchings
//! greedily from the heaviest class down.

use crate::matching::Matching;
use crate::maximum::maximum_matching;
use graph::{Edge, Graph, VertexId, WeightedGraph};
// Membership-only disjointness probe; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// A matching in a weighted graph together with its total weight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedMatching {
    /// The matched edges.
    pub edges: Vec<Edge>,
    /// Sum of the weights of the matched edges.
    pub total_weight: f64,
}

impl WeightedMatching {
    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edge is matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validates the matching against a weighted graph: edges present,
    /// pairwise disjoint, and the recorded weight equals the sum of the edge
    /// weights (up to floating-point tolerance).
    pub fn is_valid_for(&self, g: &WeightedGraph) -> bool {
        let mut seen: HashSet<VertexId> = HashSet::new(); // xtask: allow(hash-collections)
        let mut weight = 0.0;
        for e in &self.edges {
            match g.weight_of(e.u, e.v) {
                Some(w) => weight += w,
                None => return false,
            }
            if !seen.insert(e.u) || !seen.insert(e.v) {
                return false;
            }
        }
        (weight - self.total_weight).abs() <= 1e-6 * (1.0 + weight.abs())
    }
}

/// Greedy weighted matching: scan edges in decreasing weight order and take
/// every edge whose endpoints are still free. This is the classic
/// 1/2-approximation of the maximum-weight matching and serves as the
/// whole-input baseline for the weighted-coreset experiment (E9).
pub fn greedy_weighted_matching(g: &WeightedGraph) -> WeightedMatching {
    let mut order: Vec<usize> = (0..g.m()).collect();
    order.sort_by(|&a, &b| {
        g.edges()[b]
            .weight
            .partial_cmp(&g.edges()[a].weight)
            .expect("weights are finite by WeightedGraph invariant")
    });
    let mut matched = vec![false; g.n()];
    let mut out = WeightedMatching::default();
    for idx in order {
        let we = g.edges()[idx];
        let (u, v) = (we.edge.u as usize, we.edge.v as usize);
        if !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            out.edges.push(we.edge);
            out.total_weight += we.weight;
        }
    }
    out
}

/// Crouch–Stubbs reduction: split the graph into geometric weight classes
/// (`base` is the geometric ratio, typically 2), compute an *unweighted*
/// matching for each class with `solver`, then combine the class matchings
/// greedily from the heaviest class down.
///
/// With a maximum-matching solver this is an O(1)-approximation of the
/// maximum-weight matching; the coreset crate re-uses exactly this reduction
/// on top of the per-class unweighted matching coresets.
pub fn crouch_stubbs_matching<F>(g: &WeightedGraph, base: f64, mut solver: F) -> WeightedMatching
where
    F: FnMut(&Graph) -> Matching,
{
    let classes = g.weight_classes(base);
    // Heaviest class first.
    let mut matched = vec![false; g.n()];
    let mut out = WeightedMatching::default();
    for (_, class_graph) in classes.iter().rev() {
        let class_matching = solver(class_graph);
        for e in class_matching.edges() {
            let (u, v) = (e.u as usize, e.v as usize);
            if !matched[u] && !matched[v] {
                matched[u] = true;
                matched[v] = true;
                out.edges.push(*e);
                out.total_weight += g
                    .weight_of(e.u, e.v)
                    .expect("class subgraph edges come from the weighted graph");
            }
        }
    }
    out
}

/// Convenience wrapper: Crouch–Stubbs with base 2 and an exact
/// maximum-matching solver per class.
pub fn crouch_stubbs_maximum(g: &WeightedGraph) -> WeightedMatching {
    crouch_stubbs_matching(g, 2.0, maximum_matching)
}

/// Exhaustive maximum-weight matching for tiny graphs (`m <= ~20`), used only
/// to cross-check the approximation algorithms in tests.
pub fn brute_force_maximum_weight(g: &WeightedGraph) -> f64 {
    fn recurse(g: &WeightedGraph, idx: usize, used: &mut Vec<bool>, weight: f64, best: &mut f64) {
        *best = best.max(weight);
        if idx == g.m() {
            return;
        }
        // Skip.
        recurse(g, idx + 1, used, weight, best);
        // Take.
        let we = g.edges()[idx];
        let (u, v) = (we.edge.u as usize, we.edge.v as usize);
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            recurse(g, idx + 1, used, weight + we.weight, best);
            used[u] = false;
            used[v] = false;
        }
    }
    let mut best = 0.0;
    let mut used = vec![false; g.n()];
    recurse(g, 0, &mut used, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn random_weighted(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let mut r = rng(seed);
        let mut triples = Vec::new();
        let mut attempts = 0;
        while triples.len() < m && attempts < 50 * m {
            attempts += 1;
            let u = r.gen_range(0..n as u32);
            let v = r.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let w = r.gen_range(0.5..100.0);
            triples.push((u, v, w));
        }
        WeightedGraph::from_triples(n, triples).unwrap()
    }

    #[test]
    fn greedy_picks_the_heavy_edge() {
        // Path with a heavy middle edge: greedy takes the middle edge only.
        let g =
            WeightedGraph::from_triples(4, vec![(0, 1, 1.0), (1, 2, 10.0), (2, 3, 1.0)]).unwrap();
        let m = greedy_weighted_matching(&g);
        assert!(m.is_valid_for(&g));
        assert_eq!(m.total_weight, 10.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn greedy_is_half_approximation() {
        for seed in 0..10 {
            let g = random_weighted(10, 14, seed);
            let greedy = greedy_weighted_matching(&g);
            assert!(greedy.is_valid_for(&g));
            let opt = brute_force_maximum_weight(&g);
            assert!(
                2.0 * greedy.total_weight + 1e-9 >= opt,
                "seed {seed}: greedy {} vs opt {opt}",
                greedy.total_weight
            );
        }
    }

    #[test]
    fn crouch_stubbs_is_constant_approximation() {
        for seed in 0..10 {
            let g = random_weighted(12, 16, seed + 100);
            let cs = crouch_stubbs_maximum(&g);
            assert!(cs.is_valid_for(&g));
            let opt = brute_force_maximum_weight(&g);
            // The reduction with exact per-class matchings loses at most a
            // factor ~4 with base 2 (2 from the geometric rounding, 2 from the
            // greedy combination); we assert a slightly looser factor 4.5 to
            // absorb boundary effects on tiny instances.
            assert!(
                4.5 * cs.total_weight + 1e-9 >= opt,
                "seed {seed}: crouch-stubbs {} vs opt {opt}",
                cs.total_weight
            );
        }
    }

    #[test]
    fn crouch_stubbs_on_uniform_weights_reduces_to_unweighted() {
        let g =
            WeightedGraph::from_triples(6, vec![(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]).unwrap();
        let cs = crouch_stubbs_maximum(&g);
        assert_eq!(cs.len(), 3);
        assert!((cs.total_weight - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_weighted_graph() {
        let g = WeightedGraph::empty(4);
        assert!(greedy_weighted_matching(&g).is_empty());
        assert!(crouch_stubbs_maximum(&g).is_empty());
        assert_eq!(brute_force_maximum_weight(&g), 0.0);
    }

    #[test]
    fn weighted_matching_validation_catches_errors() {
        let g = WeightedGraph::from_triples(4, vec![(0, 1, 2.0), (2, 3, 3.0)]).unwrap();
        let ok = WeightedMatching {
            edges: vec![Edge::new(0, 1)],
            total_weight: 2.0,
        };
        assert!(ok.is_valid_for(&g));
        let wrong_weight = WeightedMatching {
            edges: vec![Edge::new(0, 1)],
            total_weight: 5.0,
        };
        assert!(!wrong_weight.is_valid_for(&g));
        let missing_edge = WeightedMatching {
            edges: vec![Edge::new(0, 2)],
            total_weight: 0.0,
        };
        assert!(!missing_edge.is_valid_for(&g));
        let overlapping = WeightedMatching {
            edges: vec![Edge::new(0, 1), Edge::new(1, 2)],
            total_weight: 0.0,
        };
        assert!(!overlapping.is_valid_for(&g));
    }
}
