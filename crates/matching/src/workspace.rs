//! Reusable, epoch-reset search state for the blossom algorithm.
//!
//! The classic blossom implementation clears three `O(n)` arrays (`used`,
//! `parent`, `base`) before **every** augmenting search, allocates a fresh
//! `vec![false; n]` inside every LCA computation, and re-bases a blossom by
//! scanning all `n` vertices per contraction. On the paper's workloads —
//! sparse pieces of a huge vertex set, and coreset unions whose overlapping
//! matchings produce tens of thousands of contractions — those `O(n)` steps
//! dominate the whole solve.
//!
//! [`BlossomWorkspace`] makes every per-search and per-contraction step cost
//! time proportional to the state it actually writes:
//!
//! * **Epoch stamps.** Every per-vertex entry (`used`, `parent`, the blossom
//!   `base` links) carries the epoch of the search that wrote it. A new
//!   search bumps the search epoch; entries stamped with an older epoch read
//!   as their default (`used = false`, `parent = NONE`, `base(v) = v`)
//!   without any memory traffic. LCA-visited and blossom-membership marks
//!   live in one shared array under a separate mark epoch, bumped per LCA
//!   call / per contraction.
//! * **Union-find bases.** `base` is a forest of parent pointers with path
//!   compression (`find_base`) instead of a flat array:
//!   contracting a blossom unions the O(cycle length) bases on the blossom
//!   path into the new base, rather than rewriting (or even scanning) the
//!   other vertices' entries. The classic flat-array semantics — every
//!   member of a contracted blossom answers the new base — are preserved
//!   because member chains run through their old base.
//!
//! **Epoch-reset invariant:** a stamped entry is meaningful iff its stamp
//! equals the *current* epoch; bumping the epoch therefore invalidates all
//! entries in `O(1)`. The only `O(n)` writes left are one `mate`-array fill
//! per *solve* (not per search) and a full stamp clear when a `u32` epoch
//! counter wraps after 2³² searches — counted in
//! [`BlossomWorkspace::full_resets`] and asserted to be zero by the unit
//! tests and by experiment E13.
//!
//! The workspace is allocated once and reused across solves (the matching
//! engine keeps one per thread), so steady-state solves perform **zero**
//! per-search `O(n)` work and zero per-search allocations.

use std::collections::VecDeque;

pub(crate) const NONE: u32 = u32::MAX;

/// Reusable blossom search state with epoch-based lazy resets and union-find
/// blossom bases.
///
/// See the [module docs](self) for the invariants. Obtain one via
/// [`BlossomWorkspace::new`] and pass it to
/// [`blossom_on_csr`](crate::blossom::blossom_on_csr) /
/// [`blossom_maximum_matching_with`](crate::blossom::blossom_maximum_matching_with),
/// or let [`MatchingEngine`](crate::engine::MatchingEngine) manage it.
#[derive(Debug, Clone)]
pub struct BlossomWorkspace {
    search_epoch: u32,
    mark_epoch: u32,
    /// `used` stamp per vertex (stamp == search_epoch ⇒ used).
    used: Vec<u32>,
    parent: Vec<u32>,
    parent_stamp: Vec<u32>,
    /// Union-find parent pointers of the blossom-base forest; an unstamped
    /// entry is its own root.
    base: Vec<u32>,
    base_stamp: Vec<u32>,
    /// Shared LCA-visited / blossom-membership stamps (== mark_epoch ⇒ set).
    mark: Vec<u32>,
    /// Bases joining the blossom being contracted (collected by the
    /// mark-path walk, applied in ascending order).
    pub(crate) candidates: Vec<u32>,
    /// BFS queue of the current search.
    pub(crate) queue: VecDeque<u32>,
    /// `mate[v]` = partner of `v` or [`NONE`]; reset once per solve.
    pub(crate) mate: Vec<u32>,
    searches: u64,
    full_resets: u64,
}

impl Default for BlossomWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl BlossomWorkspace {
    /// Creates an empty workspace; arrays grow to the largest graph solved.
    pub fn new() -> Self {
        BlossomWorkspace {
            // Stamps start at 0 and epochs at 1, so freshly grown (zeroed)
            // array tails always read as "stale".
            search_epoch: 1,
            mark_epoch: 1,
            used: Vec::new(),
            parent: Vec::new(),
            parent_stamp: Vec::new(),
            base: Vec::new(),
            base_stamp: Vec::new(),
            mark: Vec::new(),
            candidates: Vec::new(),
            queue: VecDeque::new(),
            mate: Vec::new(),
            searches: 0,
            full_resets: 0,
        }
    }

    /// Number of augmenting searches run through this workspace (lifetime).
    #[inline]
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Number of `O(n)` stamp clears ever performed. Stays 0 in practice: a
    /// full reset only happens when a `u32` epoch counter wraps around, i.e.
    /// after 2³² searches (or as many LCA/contraction marks). The unit tests
    /// and experiment E13 assert this counter, pinning the "zero per-search
    /// `O(n)` resets" claim.
    #[inline]
    pub fn full_resets(&self) -> u64 {
        self.full_resets
    }

    /// Prepares the workspace for a solve on an `n`-vertex graph: grows the
    /// arrays if needed and fills `mate` with [`NONE`] (the one `O(n)` write
    /// per solve).
    pub(crate) fn begin_solve(&mut self, n: usize) {
        if self.used.len() < n {
            self.used.resize(n, 0);
            self.parent.resize(n, 0);
            self.parent_stamp.resize(n, 0);
            self.base.resize(n, 0);
            self.base_stamp.resize(n, 0);
            self.mark.resize(n, 0);
        }
        self.mate.clear();
        self.mate.resize(n, NONE);
    }

    /// Starts a new augmenting search rooted at `root`: bumps the search
    /// epoch (lazily invalidating `used`/`parent`/`base`), clears the queue,
    /// and enqueues the root.
    pub(crate) fn begin_search(&mut self, root: u32) {
        self.searches += 1;
        self.search_epoch = match self.search_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                for s in self
                    .used
                    .iter_mut()
                    .chain(self.parent_stamp.iter_mut())
                    .chain(self.base_stamp.iter_mut())
                {
                    *s = 0;
                }
                self.full_resets += 1;
                1
            }
        };
        self.queue.clear();
        self.set_used(root);
        self.queue.push_back(root);
    }

    /// Starts a new LCA-visited / blossom-membership scope by bumping the
    /// mark epoch (lazily clearing all marks).
    pub(crate) fn bump_mark(&mut self) {
        self.mark_epoch = match self.mark_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.iter_mut().for_each(|s| *s = 0);
                self.full_resets += 1;
                1
            }
        };
    }

    #[inline]
    pub(crate) fn is_used(&self, v: u32) -> bool {
        self.used[v as usize] == self.search_epoch
    }

    #[inline]
    pub(crate) fn set_used(&mut self, v: u32) {
        self.used[v as usize] = self.search_epoch;
    }

    #[inline]
    pub(crate) fn parent_of(&self, v: u32) -> u32 {
        if self.parent_stamp[v as usize] == self.search_epoch {
            self.parent[v as usize]
        } else {
            NONE
        }
    }

    #[inline]
    pub(crate) fn set_parent(&mut self, v: u32, p: u32) {
        self.parent[v as usize] = p;
        self.parent_stamp[v as usize] = self.search_epoch;
    }

    /// One stamped hop of the base forest: `v`'s parent pointer, or `v`
    /// itself when unstamped (every vertex is its own base by default).
    #[inline]
    fn base_hop(&self, v: u32) -> u32 {
        if self.base_stamp[v as usize] == self.search_epoch {
            self.base[v as usize]
        } else {
            v
        }
    }

    /// The base of `v`'s blossom: the root of `v`'s union-find chain, with
    /// path compression.
    #[inline]
    pub(crate) fn find_base(&mut self, v: u32) -> u32 {
        let mut root = v;
        loop {
            let p = self.base_hop(root);
            if p == root {
                break;
            }
            root = p;
        }
        let mut x = v;
        while x != root {
            let p = self.base_hop(x);
            self.base[x as usize] = root;
            self.base_stamp[x as usize] = self.search_epoch;
            x = p;
        }
        root
    }

    /// Unions `b` (a base) into the new base `target`.
    #[inline]
    pub(crate) fn link_base(&mut self, b: u32, target: u32) {
        self.base[b as usize] = target;
        self.base_stamp[b as usize] = self.search_epoch;
    }

    #[inline]
    pub(crate) fn is_marked(&self, v: u32) -> bool {
        self.mark[v as usize] == self.mark_epoch
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, v: u32) {
        self.mark[v as usize] = self.mark_epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_read_stale_after_epoch_bump() {
        let mut ws = BlossomWorkspace::new();
        ws.begin_solve(4);
        ws.begin_search(0);
        ws.set_parent(2, 1);
        ws.link_base(3, 1);
        assert!(ws.is_used(0));
        assert_eq!(ws.parent_of(2), 1);
        assert_eq!(ws.find_base(3), 1);
        assert_eq!(ws.find_base(2), 2, "unset base defaults to the vertex");
        // New search: everything reads as default without any clearing.
        ws.begin_search(1);
        assert!(!ws.is_used(0));
        assert!(ws.is_used(1));
        assert_eq!(ws.parent_of(2), NONE);
        assert_eq!(ws.find_base(3), 3);
        assert_eq!(ws.full_resets(), 0);
        assert_eq!(ws.searches(), 2);
    }

    #[test]
    fn find_base_follows_chains_and_compresses() {
        let mut ws = BlossomWorkspace::new();
        ws.begin_solve(5);
        ws.begin_search(0);
        // Chain 4 -> 3 -> 2 -> 0 (two nested contractions).
        ws.link_base(4, 3);
        ws.link_base(3, 2);
        ws.link_base(2, 0);
        assert_eq!(ws.find_base(4), 0);
        // Compressed: one hop now.
        assert_eq!(ws.base_hop(4), 0);
        assert_eq!(ws.base_hop(3), 0);
    }

    #[test]
    fn marks_are_scoped_by_bump() {
        let mut ws = BlossomWorkspace::new();
        ws.begin_solve(3);
        ws.begin_search(0);
        ws.bump_mark();
        ws.set_mark(1);
        assert!(ws.is_marked(1));
        ws.bump_mark();
        assert!(!ws.is_marked(1));
        assert_eq!(ws.full_resets(), 0);
    }

    #[test]
    fn growing_capacity_keeps_stale_semantics() {
        let mut ws = BlossomWorkspace::new();
        ws.begin_solve(2);
        ws.begin_search(0);
        // Grow mid-life: the new tail is zero-stamped, i.e. stale.
        ws.begin_solve(10);
        assert!(!ws.is_used(9));
        assert_eq!(ws.find_base(9), 9);
        assert_eq!(ws.parent_of(9), NONE);
        assert_eq!(ws.mate[9], NONE);
    }
}
