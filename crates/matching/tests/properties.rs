//! Property-based tests for the matching algorithms: validity, optimality
//! against brute force, agreement between algorithms, and the classic
//! approximation relationships the coreset analysis relies on.

use graph::gen::bipartite::random_bipartite;
use graph::gen::er::gnm;
use graph::Graph;
use matching::blossom::blossom_maximum_matching;
use matching::greedy::{maximal_matching, maximal_matching_shuffled};
use matching::hopcroft_karp::{hopcroft_karp, hopcroft_karp_size};
use matching::matching::{brute_force_maximum_matching_size, Matching};
use matching::maximum::{maximum_matching, two_coloring};
use matching::weighted::{
    brute_force_maximum_weight, crouch_stubbs_maximum, greedy_weighted_matching,
};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..16, any::<u64>(), 0usize..40).prop_map(|(n, seed, m)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

fn medium_graph() -> impl Strategy<Value = Graph> {
    (10usize..120, any::<u64>(), 0usize..500).prop_map(|(n, seed, m)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Blossom equals brute force on small graphs.
    #[test]
    fn blossom_is_optimal(g in small_graph()) {
        let m = blossom_maximum_matching(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), brute_force_maximum_matching_size(&g));
    }

    /// Hopcroft–Karp equals brute force on small bipartite graphs, and its
    /// output pairs are vertex-disjoint.
    #[test]
    fn hopcroft_karp_is_optimal(left in 1usize..10, right in 1usize..10, p in 0.0f64..0.6, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bg = random_bipartite(left, right, p, &mut rng);
        let pairs = hopcroft_karp(&bg);
        let lefts: std::collections::HashSet<_> = pairs.iter().map(|&(l, _)| l).collect();
        let rights: std::collections::HashSet<_> = pairs.iter().map(|&(_, r)| r).collect();
        prop_assert_eq!(lefts.len(), pairs.len());
        prop_assert_eq!(rights.len(), pairs.len());
        prop_assert_eq!(pairs.len(), brute_force_maximum_matching_size(&bg.to_graph()));
    }

    /// Blossom and Hopcroft–Karp agree on bipartite graphs of any size we test.
    #[test]
    fn blossom_agrees_with_hopcroft_karp(left in 1usize..40, right in 1usize..40, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bg = random_bipartite(left, right, p, &mut rng);
        prop_assert_eq!(
            blossom_maximum_matching(&bg.to_graph()).len(),
            hopcroft_karp_size(&bg)
        );
    }

    /// The auto-dispatching front-end is always valid and optimal on small
    /// graphs, bipartite or not.
    #[test]
    fn maximum_matching_front_end_is_optimal(g in small_graph()) {
        let m = maximum_matching(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), brute_force_maximum_matching_size(&g));
        // The 2-colouring, when it exists, is a proper colouring.
        if let Some(colors) = two_coloring(&g) {
            for e in g.edges() {
                prop_assert_ne!(colors[e.u as usize], colors[e.v as usize]);
            }
        }
    }

    /// Every maximal matching is valid, maximal, and at least half of maximum.
    #[test]
    fn maximal_matchings_are_half_optimal(g in medium_graph(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for m in [maximal_matching(&g), maximal_matching_shuffled(&g, &mut rng)] {
            prop_assert!(m.is_valid_for(&g));
            prop_assert!(m.is_maximal_in(&g));
            prop_assert!(2 * m.len() >= maximum_matching(&g).len());
        }
    }

    /// Matching::mate_array round-trips the edge set.
    #[test]
    fn mate_array_round_trips(g in medium_graph()) {
        let m = maximum_matching(&g);
        let mates = m.mate_array(g.n());
        let mut count = 0usize;
        for (v, mate) in mates.iter().enumerate() {
            if let Some(w) = mate {
                prop_assert_eq!(mates[*w as usize], Some(v as u32));
                count += 1;
            }
        }
        prop_assert_eq!(count, 2 * m.len());
    }

    /// Greedy weighted matching is a 1/2-approximation and Crouch–Stubbs with
    /// exact per-class matchings is within a constant factor, on tiny graphs
    /// where the optimum is computable.
    #[test]
    fn weighted_approximations(n in 2usize..10, m in 0usize..18, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let triples: Vec<(u32, u32, f64)> = (0..m)
            .filter_map(|_| {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u == v { None } else { Some((u, v, rng.gen_range(0.5..100.0))) }
            })
            .collect();
        let g = graph::WeightedGraph::from_triples(n, triples).unwrap();
        let opt = brute_force_maximum_weight(&g);
        let greedy = greedy_weighted_matching(&g);
        prop_assert!(greedy.is_valid_for(&g));
        prop_assert!(2.0 * greedy.total_weight + 1e-9 >= opt);
        let cs = crouch_stubbs_maximum(&g);
        prop_assert!(cs.is_valid_for(&g));
        prop_assert!(8.0 * cs.total_weight + 1e-9 >= opt);
    }

    /// Matching construction validates disjointness regardless of input order.
    #[test]
    fn matching_try_from_edges_detects_conflicts(g in small_graph()) {
        let edges: Vec<_> = g.edges().to_vec();
        match Matching::try_from_edges(edges.clone()) {
            Some(m) => {
                // If accepted, it really is a matching.
                prop_assert!(m.is_valid_for(&g));
            }
            None => {
                // If rejected, two edges must share an endpoint.
                let mut shares = false;
                'outer: for (i, a) in edges.iter().enumerate() {
                    for b in &edges[i + 1..] {
                        if a.shares_endpoint(b) {
                            shares = true;
                            break 'outer;
                        }
                    }
                }
                prop_assert!(shares);
            }
        }
    }
}
