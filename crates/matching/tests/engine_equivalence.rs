//! Properties pinning the matching engine (compaction + epoch-reset
//! workspace + fused dispatch + warm starts) to the simple reference
//! algorithms: the new hot path must be a pure performance change, never a
//! behavioural one.

use graph::gen::er::gnm;
use graph::{Csr, Edge, Graph, VertexId};
use matching::blossom::{blossom_maximum_matching, blossom_maximum_matching_with};
use matching::hopcroft_karp::hopcroft_karp_size;
use matching::matching::brute_force_maximum_matching_size;
use matching::maximum::{maximum_matching, maximum_matching_warm, MaximumMatchingAlgorithm};
use matching::{maximal_matching, BlossomWorkspace, MatchingEngine};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_graph(max_n: usize, density: f64) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        gnm(n, ((max_m as f64) * density) as usize, &mut rng)
    })
}

/// Spreads a graph's vertices over a sparse id space (multiplying ids by
/// `stride`), so most vertex ids are isolated — the compaction regime.
fn spread(g: &Graph, stride: u32) -> Graph {
    let edges: Vec<Edge> = g
        .edges()
        .iter()
        .map(|e| Edge::new(e.u * stride, e.v * stride))
        .collect();
    Graph::from_edges_unchecked(g.n() * stride as usize, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's size equals exhaustive search on small graphs.
    #[test]
    fn engine_size_matches_brute_force(g in arb_graph(12, 0.3)) {
        let mut engine = MatchingEngine::new();
        let m = engine.solve(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), brute_force_maximum_matching_size(&g));
    }

    /// Compaction round trip: solving a graph whose vertices sit at sparse
    /// ids returns a valid matching on the ORIGINAL ids with the same size
    /// as the dense original.
    #[test]
    fn compaction_round_trip_preserves_ids_and_size(g in arb_graph(40, 0.15)) {
        let sparse = spread(&g, 17);
        let mut engine = MatchingEngine::new();
        let dense = engine.solve(&g);
        let on_sparse = engine.solve(&sparse);
        prop_assert!(on_sparse.is_valid_for(&sparse));
        prop_assert_eq!(on_sparse.len(), dense.len());
        // The relabeling is monotone, so the sparse solve is exactly the
        // dense solve with ids multiplied back.
        let expected: Vec<Edge> = dense
            .edges()
            .iter()
            .map(|e| Edge::new(e.u * 17, e.v * 17))
            .collect();
        prop_assert_eq!(on_sparse.edges(), expected.as_slice());
    }

    /// Warm-started solves return the same size as cold solves (always a
    /// maximum matching) and stay valid.
    #[test]
    fn warm_start_size_identical_to_cold(g in arb_graph(60, 0.1)) {
        let cold = maximum_matching(&g);
        let warm_seed = maximal_matching(&g);
        for alg in [MaximumMatchingAlgorithm::Auto, MaximumMatchingAlgorithm::Blossom] {
            let warm = maximum_matching_warm(&g, &warm_seed, alg);
            prop_assert!(warm.is_valid_for(&g));
            prop_assert_eq!(warm.len(), cold.len());
        }
    }

    /// A reused workspace never changes blossom's answer (epoch stamps make
    /// stale state invisible) and never falls back to an O(n) reset.
    #[test]
    fn workspace_reuse_is_invisible(graphs in proptest::collection::vec(arb_graph(50, 0.12), 1..6)) {
        let mut ws = BlossomWorkspace::new();
        for g in &graphs {
            let reused = blossom_maximum_matching_with(g, &mut ws);
            let fresh = blossom_maximum_matching(g);
            prop_assert_eq!(reused, fresh);
        }
        prop_assert_eq!(ws.full_resets(), 0);
    }

    /// The engine agrees with the plain bipartite Hopcroft–Karp on bipartite
    /// inputs (the fused dispatch path).
    #[test]
    fn engine_matches_hopcroft_karp_on_bipartite(
        ln in 1usize..25, rn in 1usize..25, seed in any::<u64>()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bg = graph::gen::bipartite::random_bipartite(ln, rn, 0.15, &mut rng);
        let g = bg.to_graph();
        let mut engine = MatchingEngine::new();
        let m = engine.solve(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), hopcroft_karp_size(&bg));
    }
}

#[test]
fn blossom_workspace_runs_zero_o_n_resets_at_scale() {
    // The counter behind the E13 claim: many searches over reused state,
    // zero full clears. Force the blossom path with a non-bipartite graph.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = graph::gen::er::gnp(3_000, 1.2e-3, &mut rng);
    let mut engine = MatchingEngine::new();
    for _ in 0..3 {
        let m = engine.solve_with(&g, MaximumMatchingAlgorithm::Blossom);
        assert!(m.is_valid_for(&g));
    }
    assert!(engine.workspace().searches() > 100);
    assert_eq!(engine.workspace().full_resets(), 0);
}

#[test]
fn fused_dispatch_shares_one_csr_and_matches_reference() {
    // Deterministic spot check of the fused HK path against the
    // BipartiteGraph-materializing reference construction.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let bg = graph::gen::bipartite::random_bipartite(80, 80, 0.05, &mut rng);
    let g = bg.to_graph();
    let adj = Csr::from_ref(&g);
    let color: Vec<u8> = (0..g.n() as VertexId)
        .map(|v| u8::from(v as usize >= bg.left_n()))
        .collect();
    let fused = matching::hopcroft_karp::hopcroft_karp_on_csr(&adj, &color, &[]);
    assert_eq!(fused.len(), hopcroft_karp_size(&bg));
}
