//! Criterion micro-benchmarks for the matching algorithms that power the
//! coresets (throughput benchmark T1 in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen::bipartite::random_bipartite;
use graph::gen::er::gnp;
use matching::blossom::blossom_maximum_matching;
use matching::greedy::maximal_matching;
use matching::hopcroft_karp::hopcroft_karp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for side in [1_000usize, 4_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_bipartite(side, side, 4.0 / side as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(side), &g, |b, g| {
            b.iter(|| black_box(hopcroft_karp(g).len()));
        });
    }
    group.finish();
}

fn bench_blossom(c: &mut Criterion) {
    let mut group = c.benchmark_group("blossom");
    group.sample_size(10);
    for n in [500usize, 1_500] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(blossom_maximum_matching(g).len()));
        });
    }
    group.finish();
}

fn bench_maximal(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_maximal");
    for n in [10_000usize, 50_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(maximal_matching(g).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hopcroft_karp, bench_blossom, bench_maximal);
criterion_main!(benches);
