//! Criterion benchmarks for the end-to-end protocols (partition → parallel
//! coreset construction → composition), including the rayon parallel speedup
//! over machines (T1 in DESIGN.md).

use coresets::{DistributedMatching, DistributedVertexCover};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen::er::gnp;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn workload(n: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    gnp(n, 8.0 / n as f64, &mut rng)
}

fn bench_matching_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_matching");
    group.sample_size(10);
    let g = workload(20_000);
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    DistributedMatching::new(k)
                        .run(&g, 3)
                        .unwrap()
                        .matching
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_vertex_cover_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_vertex_cover");
    group.sample_size(10);
    let g = workload(20_000);
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    DistributedVertexCover::new(k)
                        .run(&g, 3)
                        .unwrap()
                        .cover
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching_protocol,
    bench_vertex_cover_protocol
);
criterion_main!(benches);
