//! Criterion micro-benchmarks for the vertex-cover algorithms that power the
//! VC coresets — the counterpart of `bench_matching_algorithms` for the
//! matching side. All entry points run on the per-thread
//! `vertexcover::VcEngine` (bucket-queue peeling, stamped 2-approximation,
//! compacted greedy / LP), so these benches track the engine hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen::er::gnp;
use graph::gen::structured::star_forest;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vertexcover::lp::lp_vertex_cover;
use vertexcover::peeling::parnas_ron_peeling;
use vertexcover::{greedy_degree_cover, two_approx_cover};

fn bench_peeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parnas_ron_peeling");
    group.sample_size(10);
    // Sparse G(n, p): the stamped pre-screen regime of the protocol pieces.
    for n in [10_000usize, 50_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("gnp", n), &g, |b, g| {
            b.iter(|| black_box(parnas_ron_peeling(g, 16).peeled_count()));
        });
    }
    // Star-heavy skew: every round of the bucket queue fires.
    let g = star_forest(40, 500);
    group.bench_with_input(BenchmarkId::new("star_forest", g.n()), &g, |b, g| {
        b.iter(|| black_box(parnas_ron_peeling(g, 8).peeled_count()));
    });
    group.finish();
}

fn bench_two_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_approx_cover");
    for n in [10_000usize, 50_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(two_approx_cover(g).len()));
        });
    }
    group.finish();
}

fn bench_greedy_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_degree_cover");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = gnp(n, 6.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(greedy_degree_cover(g).len()));
        });
    }
    group.finish();
}

fn bench_lp_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_vertex_cover_rounded");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(lp_vertex_cover(g).rounded_cover().len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_peeling,
    bench_two_approx,
    bench_greedy_degree,
    bench_lp_rounding
);
criterion_main!(benches);
