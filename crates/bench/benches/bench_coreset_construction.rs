//! Criterion benchmarks for per-machine coreset construction — the work every
//! machine does locally in the simultaneous protocol.

use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder};
use coresets::CoresetParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen::er::gnp;
use graph::partition::EdgePartition;
use graph::{Graph, GraphRef};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn one_piece(n: usize, k: usize) -> (Graph, CoresetParams) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = gnp(n, 8.0 / n as f64, &mut rng);
    let partition = EdgePartition::random(&g, k, &mut rng).unwrap();
    (partition.pieces()[0].clone(), CoresetParams::new(n, k))
}

fn bench_matching_coreset(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_coreset_build");
    for n in [10_000usize, 40_000] {
        let (piece, params) = one_piece(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &piece, |b, piece| {
            b.iter(|| {
                let mut rng = coresets::machine_rng(7, 0);
                black_box(
                    MaximumMatchingCoreset::new()
                        .build(piece.as_view(), &params, 0, &mut rng)
                        .m(),
                )
            });
        });
    }
    group.finish();
}

fn bench_vc_coreset(c: &mut Criterion) {
    let mut group = c.benchmark_group("vc_coreset_build");
    for n in [10_000usize, 40_000] {
        let (piece, params) = one_piece(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &piece, |b, piece| {
            b.iter(|| {
                let mut rng = coresets::machine_rng(7, 0);
                black_box(
                    PeelingVcCoreset::new()
                        .build(piece.as_view(), &params, 0, &mut rng)
                        .size(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching_coreset, bench_vc_coreset);
criterion_main!(benches);
