//! Criterion benchmarks for the graph generators and the random
//! k-partitioning step — the "data loading" half of every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::gen::bipartite::random_bipartite;
use graph::gen::er::gnp;
use graph::gen::hard::d_matching;
use graph::partition::EdgePartition;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_gnp");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                black_box(gnp(n, 8.0 / n as f64, &mut rng).m())
            });
        });
    }
    group.finish();
}

fn bench_bipartite(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_random_bipartite");
    for side in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                black_box(random_bipartite(side, side, 4.0 / side as f64, &mut rng).m())
            });
        });
    }
    group.finish();
}

fn bench_d_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_d_matching");
    group.sample_size(10);
    for n in [4_000usize, 16_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                black_box(d_matching(n, 8.0, 8, &mut rng).unwrap().graph.m())
            });
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_k_partition");
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = gnp(100_000, 8.0 / 100_000.0, &mut rng);
    for k in [8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                black_box(
                    EdgePartition::random(&g, k, &mut rng)
                        .unwrap()
                        .total_edges(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gnp,
    bench_bipartite,
    bench_d_matching,
    bench_partition
);
criterion_main!(benches);
