//! Experiment harness shared by the `exp_*` binaries.
//!
//! Every experiment binary builds one or more [`Table`]s (markdown-formatted,
//! so the output can be pasted directly into `EXPERIMENTS.md`), using the
//! statistics helpers in [`stats`] to aggregate repeated trials under
//! different seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::Table;

/// The base seed all experiments derive their per-trial seeds from, so that
/// every table in `EXPERIMENTS.md` is reproducible bit-for-bit.
pub const BASE_SEED: u64 = 20170507; // SPAA 2017 submission era

/// Derives the seed of trial `t` of experiment `exp`.
pub fn trial_seed(exp: u64, t: u64) -> u64 {
    BASE_SEED ^ (exp.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ t.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_differ_across_trials_and_experiments() {
        assert_ne!(trial_seed(1, 0), trial_seed(1, 1));
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
        assert_eq!(trial_seed(3, 4), trial_seed(3, 4));
    }
}
