//! Tiny statistics helpers for aggregating repeated trials.

/// Mean / median / min / max / standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (midpoint of the two central observations for even counts) —
    /// the robust location estimate the wall-clock benchmarks report.
    pub median: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Summarises a slice of observations. Returns a zeroed summary for an
    /// empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                mean: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
                count: 0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            mean,
            median,
            min,
            max,
            std_dev: variance.sqrt(),
            count,
        }
    }

    /// Summarises an iterator of usize observations.
    pub fn of_counts<I: IntoIterator<Item = usize>>(values: I) -> Self {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        assert!((s.std_dev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn median_is_robust_to_outliers_and_order() {
        let s = Summary::of(&[100.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(Summary::of(&[5.0]).median, 5.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([2usize, 4, 6]);
        assert_eq!(s.mean, 4.0);
    }
}
