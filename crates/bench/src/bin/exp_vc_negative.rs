//! Experiment E4 — Section 1.2 separation for vertex cover: sending a local
//! vertex cover of each piece (vertices only, no edges) composes to an
//! Ω(k)-approximation on star instances, while the peeling coreset of
//! Theorem 2 stays bounded.
//!
//! For each machine count `k` the instance is a forest of stars with `4k`
//! leaves each (the paper's "star on k vertices" example, scaled so that every
//! machine receives a few edges of every star). The optimum cover is one
//! centre per star.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_vc_negative`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::{DistributedVertexCover, LocalCoverCoreset};
use graph::gen::structured::star_forest;

const EXP_ID: u64 = 4;
const TRIALS: u64 = 3;
const STARS: usize = 50;

fn main() {
    println!("# E4 — peeling coreset vs local-cover coresets on stars (Section 1.2)\n");
    println!("Paper claim: a vertex cover of each machine's subgraph is NOT a composable");
    println!("coreset — on stars the union of local covers is Ω(k) times the optimum,");
    println!("while the peeling coreset composition stays small.\n");

    let mut table = Table::new(
        format!("E4: star forest with {STARS} stars x 4k leaves (OPT = {STARS})"),
        &[
            "k",
            "leaves/star",
            "peeling ratio",
            "local-cover ratio",
            "adversarial local-cover ratio",
        ],
    );

    for k in [2usize, 4, 8, 16, 32] {
        let leaves = 4 * k;
        let g = star_forest(STARS, leaves);
        let opt = STARS as f64;

        let mut peel = Vec::new();
        let mut local = Vec::new();
        let mut adversarial = Vec::new();
        for t in 0..TRIALS {
            let seed = trial_seed(EXP_ID, k as u64 * 7 + t);
            let a = DistributedVertexCover::new(k)
                .run(&g, seed)
                .expect("k >= 1");
            let b = DistributedVertexCover::with_builder(k, LocalCoverCoreset::new())
                .run(&g, seed)
                .expect("k >= 1");
            let c = DistributedVertexCover::with_builder(k, LocalCoverCoreset::adversarial())
                .run(&g, seed)
                .expect("k >= 1");
            assert!(a.cover.covers(&g));
            assert!(b.cover.covers(&g));
            assert!(c.cover.covers(&g));
            peel.push(a.cover.len() as f64 / opt);
            local.push(b.cover.len() as f64 / opt);
            adversarial.push(c.cover.len() as f64 / opt);
        }
        table.add_row(vec![
            k.to_string(),
            leaves.to_string(),
            fmt_f(Summary::of(&peel).mean),
            fmt_f(Summary::of(&local).mean),
            fmt_f(Summary::of(&adversarial).mean),
        ]);
    }
    println!("{table}");
    println!("Expected shape: peeling ratio stays bounded; both local-cover ratios grow");
    println!("roughly linearly in k (the adversarial one fastest).");
}
