//! Experiment E7 — communication of the simultaneous protocols (Results 1 and
//! 3, Remarks 5.2 and 5.8): total communication is Õ(nk) for the exact-coreset
//! protocols and scales like nk/α² (matching) and nk/α (vertex cover) for the
//! α-approximate variants.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_communication`.

use bench::table::fmt_f;
use bench::{trial_seed, Table};
use distsim::protocols::matching::{report_default_matching_protocol, report_subsampled_protocol};
use distsim::protocols::vertex_cover::{
    report_default_vertex_cover_protocol, report_grouped_protocol,
};
use graph::gen::bipartite::planted_matching_bipartite;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::approx::two_approx_cover;

const EXP_ID: u64 = 7;

fn main() {
    println!("# E7 — communication of the simultaneous protocols (Results 1 & 3)\n");
    println!("Paper claims: Õ(nk) total communication for the O(1)/O(log n) protocols;");
    println!("Remark 5.2 gives an α-approximate matching protocol with Õ(nk/α²) words and");
    println!("Remark 5.8 an α-approximate vertex-cover protocol with Õ(nk/α) words.\n");

    let side = 6000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(EXP_ID, 0));
    let (bg, _) = planted_matching_bipartite(side, 0.0008, &mut rng);
    let g = bg.to_graph();
    let n = g.n();
    let matching_opt = maximum_matching(&g).len();
    let cover_ref = two_approx_cover(&g).len().max(1);

    // Part 1: scaling with k for the exact-coreset protocols.
    let mut table_k = Table::new(
        format!("E7a: total communication vs k (n = {n}, m = {})", g.m()),
        &[
            "k",
            "matching words",
            "matching words / nk",
            "matching ratio",
            "vc words",
            "vc words / nk",
            "vc ratio",
        ],
    );
    for k in [4usize, 8, 16, 32, 64] {
        let seed = trial_seed(EXP_ID, 10 + k as u64);
        let mat = report_default_matching_protocol(&g, k, matching_opt, seed).expect("k >= 1");
        let vc = report_default_vertex_cover_protocol(&g, k, cover_ref, seed).expect("k >= 1");
        let nk = (n * k) as f64;
        table_k.add_row(vec![
            k.to_string(),
            mat.communication.total_words().to_string(),
            fmt_f(mat.communication.total_words() as f64 / nk),
            fmt_f(mat.approximation_ratio),
            vc.communication.total_words().to_string(),
            fmt_f(vc.communication.total_words() as f64 / nk),
            fmt_f(vc.approximation_ratio),
        ]);
    }
    println!("{table_k}");
    println!("Expected shape: both `words / nk` columns are bounded by a constant");
    println!("(≈ 1 for matching because each message is a matching of ≤ n/2 edges).\n");

    // Part 2: the α-tradeoffs of Remarks 5.2 and 5.8.
    let k = 16usize;
    let mut table_alpha = Table::new(
        format!("E7b: α-approximation / communication trade-off at k = {k}"),
        &[
            "alpha",
            "subsampled words",
            "words x alpha^2 / nk",
            "subsampled ratio",
            "grouped vc words",
            "words x alpha / (nk log n)",
            "grouped vc ratio",
        ],
    );
    for alpha in [2.0f64, 4.0, 8.0, 16.0] {
        let seed = trial_seed(EXP_ID, 1000 + alpha as u64);
        let sub = report_subsampled_protocol(&g, k, alpha, matching_opt, seed).expect("k >= 1");
        let grouped = report_grouped_protocol(&g, k, alpha, cover_ref, seed).expect("k >= 1");
        let nk = (n * k) as f64;
        let log_n = (n as f64).log2();
        table_alpha.add_row(vec![
            fmt_f(alpha),
            sub.communication.total_words().to_string(),
            fmt_f(sub.communication.total_words() as f64 * alpha * alpha / nk),
            fmt_f(sub.approximation_ratio),
            grouped.communication.total_words().to_string(),
            fmt_f(grouped.communication.total_words() as f64 * alpha / (nk * log_n)),
            fmt_f(grouped.approximation_ratio),
        ]);
    }
    println!("{table_alpha}");
    println!("Expected shape: the normalised subsampled-words column stays roughly constant");
    println!("as alpha grows (communication falls like 1/alpha^2) while its ratio grows at");
    println!("most linearly with alpha. At this sparsity the grouped protocol's group size");
    println!("is 1 for alpha <= log n, so its savings only appear in E7c below.\n");

    // Part 3: Remark 5.8 on a *dense* input, where the peeling bound (rather
    // than the raw piece size) limits the residual and grouping pays off.
    let k_dense = 4usize;
    let n_dense = 4000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(EXP_ID, 9999));
    let dense = graph::gen::er::gnp(n_dense, 0.025, &mut rng);
    let dense_cover_ref = two_approx_cover(&dense).len().max(1);
    let dense_base = report_default_vertex_cover_protocol(
        &dense,
        k_dense,
        dense_cover_ref,
        trial_seed(EXP_ID, 500),
    )
    .expect("k >= 1");

    let mut table_dense = Table::new(
        format!(
            "E7c: Remark 5.8 on a dense input (n = {n_dense}, m = {}, k = {k_dense}); ungrouped peeling protocol uses {} words",
            dense.m(),
            dense_base.communication.total_words()
        ),
        &["alpha", "group size", "grouped words", "words / ungrouped words", "grouped vc ratio", "feasible"],
    );
    for alpha in [32.0f64, 64.0, 128.0, 256.0] {
        let grouped = report_grouped_protocol(
            &dense,
            k_dense,
            alpha,
            dense_cover_ref,
            trial_seed(EXP_ID, 600 + alpha as u64),
        )
        .expect("k >= 1");
        let group_size = ((alpha / (n_dense as f64).log2()).floor() as usize).max(1);
        table_dense.add_row(vec![
            fmt_f(alpha),
            group_size.to_string(),
            grouped.communication.total_words().to_string(),
            fmt_f(
                grouped.communication.total_words() as f64
                    / dense_base.communication.total_words() as f64,
            ),
            fmt_f(grouped.approximation_ratio),
            grouped.feasible.to_string(),
        ]);
    }
    println!("{table_dense}");
    println!("Expected shape: once alpha exceeds log n (group size > 1) the grouped words");
    println!("drop well below the ungrouped protocol and keep shrinking roughly like 1/alpha,");
    println!("while the cover stays feasible and within alpha of the reference.");
}
