//! Experiment E6 — the shape of the Ω(n/α) coreset-size lower bound for vertex
//! cover (Theorem 4): on the hard distribution `D_VC`, capping the coreset
//! size below the threshold makes the composed output miss the hidden edge
//! `e*` (infeasible cover) with high probability.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_vc_lower_bound`.

use bench::table::fmt_f;
use bench::{trial_seed, Table};
use coresets::capped::cap_vc_coreset;
use coresets::compose::compose_vertex_cover;
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::CoresetParams;
use graph::gen::hard::d_vc;
use graph::partition::PartitionedGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 6;
const TRIALS: u64 = 20;

fn main() {
    println!("# E6 — coreset-size lower bound for vertex cover (Theorem 4)\n");
    println!("Paper claim: any α-approximate randomized coreset needs size Ω(n/α).");
    println!("On D_VC(n, α, k) one machine holds a hidden edge e* indistinguishable from");
    println!("its ~n/α degree-one edges; a coreset capped below n/α edges almost always");
    println!("drops e*, so the composed 'cover' misses it (infeasible) unless it spends");
    println!("Ω(n) extra vertices.\n");

    let n = 4000usize;
    let k = 8usize;

    let mut table = Table::new(
        format!("E6: D_VC(n={n}, alpha, k={k}), capped peeling coresets, {TRIALS} trials per row"),
        &[
            "alpha",
            "cap / (n/alpha)",
            "cap (items/machine)",
            "e* covered (fraction)",
            "mean cover size",
            "opt upper bound",
        ],
    );

    for alpha in [4.0f64, 8.0] {
        let threshold = (n as f64 / alpha).round() as usize;
        for frac in [0.1f64, 0.25, 0.5, 1.0, 2.0] {
            let cap = ((threshold as f64 * frac) as usize).max(1);
            let mut covered = 0usize;
            let mut cover_sizes = Vec::new();
            let mut opt_ub = 0usize;
            for t in 0..TRIALS {
                let seed = trial_seed(
                    EXP_ID,
                    (alpha as u64) * 100_000 + (frac * 100.0) as u64 * 100 + t,
                );
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let inst = d_vc(n, alpha, k, &mut rng).expect("valid D_VC parameters");
                let g = inst.graph.to_graph();
                opt_ub = inst.vc_upper_bound();

                let partition = PartitionedGraph::random(&g, k, &mut rng).expect("k >= 1");
                let params = CoresetParams::new(g.n(), k);
                let outputs: Vec<VcCoresetOutput> = partition
                    .views()
                    .into_iter()
                    .enumerate()
                    .map(|(i, piece)| {
                        let mut mrng = coresets::machine_rng(seed, i);
                        let full = PeelingVcCoreset::new().build(piece, &params, i, &mut mrng);
                        cap_vc_coreset(&full, cap, &mut mrng)
                    })
                    .collect();
                let cover = compose_vertex_cover(&outputs);
                cover_sizes.push(cover.len() as f64);

                // Is the hidden edge covered? (Its right endpoint lives at
                // offset left_n in the flattened graph.)
                let (l, r) = inst.e_star;
                let r_flat = inst.graph.left_n() as u32 + r;
                if cover.contains(l) || cover.contains(r_flat) {
                    covered += 1;
                }
            }
            table.add_row(vec![
                fmt_f(alpha),
                fmt_f(frac),
                cap.to_string(),
                fmt_f(covered as f64 / TRIALS as f64),
                fmt_f(bench::Summary::of(&cover_sizes).mean),
                opt_ub.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: the covered fraction climbs towards 1 as the cap approaches");
    println!("and passes n/alpha, and is close to the cap/(n/alpha) ratio below it.");
}
