//! Thread-scaling benchmark for the end-to-end protocols: the same
//! coordinator and MapReduce runs, timed under 1 worker thread and under all
//! available cores (plus an intermediate point), on G(n,p) and on the paper's
//! hard distributions.
//!
//! Emits a machine-readable `BENCH_protocols.json` in the working directory —
//! the perf trajectory record for CI — and prints a human-readable table.
//! Every timed run is also checked to produce a thread-count-independent
//! answer, so the speedup numbers can never come from silently diverging
//! work.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_thread_scaling`.

use bench::table::fmt_f;
use bench::{Summary, Table};
use coresets::matching_coreset::MaximumMatchingCoreset;
use coresets::vc_coreset::PeelingVcCoreset;
use distsim::coordinator::CoordinatorProtocol;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use graph::gen::er::gnp;
use graph::gen::hard::{d_matching, d_vc};
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::ThreadPoolBuilder;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 2017;
const K: usize = 8;
const REPS: usize = 5;

/// One (protocol, workload, thread-count) measurement.
#[derive(Debug, Serialize)]
struct ThreadSample {
    /// Worker threads the machines were scheduled onto.
    threads: usize,
    /// Median wall-clock seconds per protocol run over all repetitions.
    median_secs: f64,
    /// `median_secs(1 thread) / median_secs(this)` — >1 means faster.
    speedup_vs_1_thread: f64,
}

/// All measurements of one protocol on one workload.
#[derive(Debug, Serialize)]
struct ProtocolBench {
    protocol: String,
    workload: String,
    n: usize,
    m: usize,
    k: usize,
    /// Size of the protocol's answer (matching edges / cover vertices),
    /// identical across thread counts by the determinism guarantee.
    answer_size: usize,
    samples: Vec<ThreadSample>,
}

/// The whole `BENCH_protocols.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// What `std::thread::available_parallelism` reported on the bench host.
    host_available_parallelism: usize,
    thread_counts: Vec<usize>,
    reps_per_sample: usize,
    seed: u64,
    protocols: Vec<ProtocolBench>,
}

/// Times `run` under `threads` workers: one warm-up, then `REPS` timed
/// repetitions; returns the median seconds and the (checked-identical)
/// answer size.
fn time_under_threads(threads: usize, run: &dyn Fn() -> usize) -> (f64, usize) {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(|| {
            let answer = run();
            let mut secs = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let start = Instant::now();
                let again = run();
                secs.push(start.elapsed().as_secs_f64());
                assert_eq!(again, answer, "protocol answer must not depend on timing");
            }
            (Summary::of(&secs).median, answer)
        })
}

fn bench_protocol(
    protocol: &str,
    workload: &str,
    g: &Graph,
    k: usize,
    thread_counts: &[usize],
    run: &dyn Fn() -> usize,
) -> ProtocolBench {
    let mut samples = Vec::new();
    let mut baseline = f64::NAN;
    let mut answer_size = None;
    for &threads in thread_counts {
        let (median_secs, answer) = time_under_threads(threads, run);
        if threads == thread_counts[0] {
            baseline = median_secs;
        }
        // The determinism guarantee, enforced: every thread count must give
        // the same answer, or the recorded speedups compare different work.
        match answer_size {
            None => answer_size = Some(answer),
            Some(expected) => assert_eq!(
                answer, expected,
                "{protocol} on {workload}: answer diverged at {threads} threads"
            ),
        }
        samples.push(ThreadSample {
            threads,
            median_secs,
            speedup_vs_1_thread: baseline / median_secs.max(f64::MIN_POSITIVE),
        });
    }
    let answer_size = answer_size.expect("at least one thread count is benchmarked");
    ProtocolBench {
        protocol: protocol.to_string(),
        workload: workload.to_string(),
        n: g.n(),
        m: g.m(),
        k,
        answer_size,
        samples,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    println!("# Thread-scaling of the coordinator and MapReduce protocols\n");
    println!("Host cores: {cores}; thread counts: {thread_counts:?}; k = {K} machines;");
    println!("{REPS} timed reps per point (median reported). Answers are asserted");
    println!("identical across thread counts before any timing is recorded.\n");

    // Workloads: the random-graph regime and the paper's hard distributions.
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let gnp_graph = gnp(20_000, 8.0 / 20_000.0, &mut rng);
    let dm = d_matching(8_000, 4.0, K, &mut rng).expect("valid D_Matching parameters");
    let dm_graph = dm.graph.to_graph();
    let dv = d_vc(8_000, 8.0, K, &mut rng).expect("valid D_VC parameters");
    let dv_graph = dv.graph.to_graph();

    let mut protocols: Vec<ProtocolBench> = Vec::new();
    for (workload, g) in [
        ("gnp(20000, 8/n)", &gnp_graph),
        ("d_matching(8000, alpha=4)", &dm_graph),
    ] {
        protocols.push(bench_protocol(
            "coordinator/matching",
            workload,
            g,
            K,
            &thread_counts,
            &|| {
                CoordinatorProtocol::random(K)
                    .run_matching(g, &MaximumMatchingCoreset::new(), SEED)
                    .expect("k >= 1")
                    .answer
                    .len()
            },
        ));
        protocols.push(bench_protocol(
            "mapreduce/matching",
            workload,
            g,
            K,
            &thread_counts,
            &|| {
                let cfg = MapReduceConfig {
                    k: K,
                    memory_words: u64::MAX,
                    input_already_random: false,
                };
                MapReduceSimulator::new(cfg)
                    .run_matching(g, &MaximumMatchingCoreset::new(), SEED)
                    .expect("k >= 1")
                    .answer
                    .len()
            },
        ));
    }
    for (workload, g) in [
        ("gnp(20000, 8/n)", &gnp_graph),
        ("d_vc(8000, alpha=8)", &dv_graph),
    ] {
        protocols.push(bench_protocol(
            "coordinator/vertex-cover",
            workload,
            g,
            K,
            &thread_counts,
            &|| {
                CoordinatorProtocol::random(K)
                    .run_vertex_cover(g, &PeelingVcCoreset::new(), SEED)
                    .expect("k >= 1")
                    .answer
                    .len()
            },
        ));
        protocols.push(bench_protocol(
            "mapreduce/vertex-cover",
            workload,
            g,
            K,
            &thread_counts,
            &|| {
                let cfg = MapReduceConfig {
                    k: K,
                    memory_words: u64::MAX,
                    input_already_random: false,
                };
                MapReduceSimulator::new(cfg)
                    .run_vertex_cover(g, &PeelingVcCoreset::new(), SEED)
                    .expect("k >= 1")
                    .answer
                    .len()
            },
        ));
    }

    let mut table = Table::new(
        format!("Protocol wall-clock vs worker threads (k = {K} machines)"),
        &[
            "protocol",
            "workload",
            "threads",
            "median secs",
            "speedup vs 1",
        ],
    );
    for p in &protocols {
        for s in &p.samples {
            table.add_row(vec![
                p.protocol.clone(),
                p.workload.clone(),
                s.threads.to_string(),
                format!("{:.4}", s.median_secs),
                fmt_f(s.speedup_vs_1_thread),
            ]);
        }
    }
    println!("{table}");

    let report = BenchReport {
        host_available_parallelism: cores,
        thread_counts,
        reps_per_sample: REPS,
        seed: SEED,
        protocols,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_protocols.json", &json).expect("BENCH_protocols.json is writable");
    println!("Wrote BENCH_protocols.json ({} bytes).", json.len());
    println!("Expected shape: speedup ~1.0 on single-core hosts; approaching the core");
    println!("count (>1.5x at 8 cores) once the per-machine coreset work dominates.");
}
