//! Experiment E12 — the zero-copy partitioned-graph data path, old vs new.
//!
//! The legacy data path materialized the partitioned edge set three times per
//! protocol run: `EdgePartition`-style bucketing into `k` owned `Graph`s, a
//! fresh `Vec<Vec<VertexId>>` adjacency per solver call, and never-reused CSR
//! buffers. The arena path copies the edge set **once** — the machine-sorted
//! permutation inside `PartitionedGraph` — and hands every machine a
//! zero-copy `GraphView` whose solver builds a flat CSR.
//!
//! Two phases are timed on `G(n, p = 2·10⁻⁴)` with `n ∈ {10⁴, 10⁵}`, `k = 16`:
//!
//! * **protocol construction** — everything before solving: partition the
//!   edges and build every machine's adjacency structure. Old: bucket into
//!   `k` owned graphs + per-piece `Vec<Vec<_>>` adjacency (what
//!   `Graph::adjacency()` rebuilt per solver call). New:
//!   `PartitionedGraph::new` + per-view `Csr`. The acceptance bar is the new
//!   path ≥ 1.3× faster at `RC_THREADS=1`.
//! * **full matching pipeline** — `run`/`run_on_partition` end to end, old
//!   (owned pieces) vs new (arena views), with identical answers asserted.
//!
//! Both phases also record the **edges-materialized counter**
//! (`graph::metrics`), the peak-allocation proxy: the legacy path copies `m`
//! edges per run into owned per-machine graphs, the arena path copies zero.
//!
//! Emits machine-readable `BENCH_datapath.json` (uploaded as a CI artifact
//! alongside `BENCH_protocols.json`).
//!
//! Regenerate with `RC_THREADS=1 cargo run --release -p bench --bin
//! exp_partition_datapath`.

use bench::table::fmt_f;
use bench::{Summary, Table};
use coresets::DistributedMatching;
use graph::gen::er::gnp;
use graph::metrics::{piece_edges_materialized, reset_piece_edges_materialized};
use graph::partition::{EdgePartition, PartitionedGraph};
use graph::{views_of, Csr, Edge, Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 2017;
const K: usize = 16;
const P: f64 = 2e-4;
const CONSTRUCTION_REPS: usize = 7;

/// One phase's old-vs-new measurement.
#[derive(Debug, Serialize)]
struct PhaseSample {
    /// Median wall-clock seconds of the legacy (owned-piece) path.
    old_median_secs: f64,
    /// Median wall-clock seconds of the arena (zero-copy view) path.
    new_median_secs: f64,
    /// `old / new` — > 1 means the new path is faster.
    speedup: f64,
    /// Edges copied into owned per-machine graphs by one legacy run.
    old_edges_materialized: u64,
    /// Edges copied into owned per-machine graphs by one arena run.
    new_edges_materialized: u64,
}

/// All measurements for one workload.
#[derive(Debug, Serialize)]
struct WorkloadBench {
    workload: String,
    n: usize,
    m: usize,
    k: usize,
    construction: PhaseSample,
    pipeline: PhaseSample,
    /// Matching size, asserted identical between the old and new pipeline.
    matching_size: usize,
}

/// The whole `BENCH_datapath.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    p: f64,
    construction_reps: usize,
    pipeline_reps: usize,
    /// Acceptance bar on the construction phase (new path must be at least
    /// this much faster).
    required_construction_speedup: f64,
    workloads: Vec<WorkloadBench>,
}

/// The seed's data path, reproduced faithfully: assignment draws, bucketing
/// into `k` growing vectors wrapped as owned `Graph`s, then the
/// per-solver-call `Vec<Vec<VertexId>>` adjacency rebuild that
/// `Graph::adjacency()` performed. Returns a checksum so the work cannot be
/// optimized away.
fn legacy_construction(g: &Graph, k: usize, rng: &mut ChaCha8Rng) -> usize {
    let assignment: Vec<usize> = (0..g.m()).map(|_| rng.gen_range(0..k)).collect();
    let mut buckets: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for (idx, &machine) in assignment.iter().enumerate() {
        buckets[machine].push(g.edges()[idx]);
    }
    let pieces: Vec<Graph> = buckets
        .into_iter()
        .map(|edges| {
            graph::metrics::record_piece_edges_materialized(edges.len());
            Graph::from_edges_unchecked(g.n(), edges)
        })
        .collect();
    let mut checksum = 0usize;
    for (machine, piece) in pieces.iter().enumerate() {
        let mut neighbors: Vec<Vec<VertexId>> = vec![Vec::new(); piece.n()];
        for e in piece.edges() {
            neighbors[e.u as usize].push(e.v);
            neighbors[e.v as usize].push(e.u);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        // Weight each machine's adjacency content by its index so the
        // checksum is sensitive to WHICH machine got WHICH edges, not just
        // the total (which is always 2m for any partition).
        let content: usize = neighbors
            .iter()
            .flatten()
            .map(|&w| w as usize + 1)
            .sum::<usize>();
        checksum = checksum.wrapping_add((machine + 1).wrapping_mul(content));
    }
    checksum
}

/// The arena data path: one machine-sorted edge permutation, zero-copy views,
/// flat CSR per machine.
fn arena_construction(g: &Graph, k: usize, rng: &mut ChaCha8Rng) -> usize {
    let partition = PartitionedGraph::random(g, k, rng).expect("k >= 1");
    let mut checksum = 0usize;
    for (machine, view) in partition.views().into_iter().enumerate() {
        let csr = Csr::from_ref(&view);
        // Same machine-weighted content checksum as the legacy path: the two
        // paths must assign identical edges to identical machines.
        let content: usize = (0..csr.n() as VertexId)
            .flat_map(|v| csr.neighbors(v))
            .map(|&w| w as usize + 1)
            .sum::<usize>();
        checksum = checksum.wrapping_add((machine + 1).wrapping_mul(content));
    }
    checksum
}

/// Times `run` with one warm-up followed by `reps` timed repetitions; asserts
/// every repetition returns the same answer and reports the median seconds.
fn median_secs<T: Eq + std::fmt::Debug>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let reference = run();
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let again = run();
        secs.push(start.elapsed().as_secs_f64());
        assert_eq!(again, reference, "timed runs must be deterministic");
    }
    (Summary::of(&secs).median, reference)
}

/// Runs `f` once with the materialization counter reset, returning its
/// reading afterwards.
fn count_materialized<T>(f: impl FnOnce() -> T) -> u64 {
    reset_piece_edges_materialized();
    let _ = f();
    piece_edges_materialized()
}

fn bench_workload(n: usize, pipeline_reps: usize) -> WorkloadBench {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let g = gnp(n, P, &mut rng);

    // Phase 1: protocol construction (partition + per-machine adjacency).
    let (old_secs, old_sum) = median_secs(CONSTRUCTION_REPS, || {
        legacy_construction(&g, K, &mut ChaCha8Rng::seed_from_u64(SEED + 1))
    });
    let (new_secs, new_sum) = median_secs(CONSTRUCTION_REPS, || {
        arena_construction(&g, K, &mut ChaCha8Rng::seed_from_u64(SEED + 1))
    });
    assert_eq!(old_sum, new_sum, "both paths must build the same adjacency");
    let construction = PhaseSample {
        old_median_secs: old_secs,
        new_median_secs: new_secs,
        speedup: old_secs / new_secs.max(f64::MIN_POSITIVE),
        old_edges_materialized: count_materialized(|| {
            legacy_construction(&g, K, &mut ChaCha8Rng::seed_from_u64(SEED + 1))
        }),
        new_edges_materialized: count_materialized(|| {
            arena_construction(&g, K, &mut ChaCha8Rng::seed_from_u64(SEED + 1))
        }),
    };

    // Phase 2: full matching pipeline (Theorem 1 protocol, end to end).
    let dm = DistributedMatching::new(K);
    let old_pipeline = || {
        // Owned-piece path: materialize an EdgePartition, then run on views
        // of the owned pieces (the per-machine clones are the cost).
        let mut r = ChaCha8Rng::seed_from_u64(SEED + 2);
        let partition = EdgePartition::random(&g, K, &mut r).expect("k >= 1");
        dm.run_on_partition(g.n(), &views_of(partition.pieces()), SEED + 2)
            .matching
            .len()
    };
    let new_pipeline = || dm.run(&g, SEED + 2).expect("k >= 1").matching.len();
    let (old_pipe_secs, old_answer) = median_secs(pipeline_reps, old_pipeline);
    let (new_pipe_secs, new_answer) = median_secs(pipeline_reps, new_pipeline);
    assert_eq!(
        old_answer, new_answer,
        "the zero-copy pipeline must be answer-identical to the owned-piece pipeline"
    );
    let pipeline = PhaseSample {
        old_median_secs: old_pipe_secs,
        new_median_secs: new_pipe_secs,
        speedup: old_pipe_secs / new_pipe_secs.max(f64::MIN_POSITIVE),
        old_edges_materialized: count_materialized(old_pipeline),
        new_edges_materialized: count_materialized(new_pipeline),
    };
    assert_eq!(
        pipeline.new_edges_materialized, 0,
        "a full run_matching_pipeline on the arena path must clone no per-machine graph"
    );
    assert!(
        pipeline.old_edges_materialized >= g.m() as u64,
        "the legacy path materializes every edge at least once"
    );

    WorkloadBench {
        workload: format!("gnp({n}, {P})"),
        n,
        m: g.m(),
        k: K,
        construction,
        pipeline,
        matching_size: new_answer,
    }
}

fn main() {
    println!("# E12 — zero-copy partitioned-graph data path (arena + CSR views)\n");
    println!("Old path: bucket edges into k owned Graphs, rebuild Vec<Vec<_>> adjacency per");
    println!("machine. New path: one machine-sorted edge arena (PartitionedGraph), zero-copy");
    println!("GraphViews, flat CSR per machine. k = {K}, p = {P}; construction timed over");
    println!("{CONSTRUCTION_REPS} reps (median), the full pipeline over fewer reps at n = 1e5.");
    println!("`edges materialized` counts edges copied into owned per-machine graphs — the");
    println!("allocation proxy: m per legacy run, 0 per arena run.\n");

    let workloads = vec![bench_workload(10_000, 5), bench_workload(100_000, 2)];

    let mut table = Table::new(
        format!("E12: old vs new data path (k = {K} machines)"),
        &[
            "workload",
            "m",
            "phase",
            "old secs",
            "new secs",
            "speedup",
            "old edges mat.",
            "new edges mat.",
        ],
    );
    for w in &workloads {
        for (phase, s) in [("construction", &w.construction), ("pipeline", &w.pipeline)] {
            table.add_row(vec![
                w.workload.clone(),
                w.m.to_string(),
                phase.to_string(),
                format!("{:.6}", s.old_median_secs),
                format!("{:.6}", s.new_median_secs),
                fmt_f(s.speedup),
                s.old_edges_materialized.to_string(),
                s.new_edges_materialized.to_string(),
            ]);
        }
    }
    println!("{table}");

    let report = BenchReport {
        seed: SEED,
        p: P,
        construction_reps: CONSTRUCTION_REPS,
        pipeline_reps: 2,
        required_construction_speedup: 1.3,
        workloads,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_datapath.json", &json).expect("BENCH_datapath.json is writable");
    println!("Wrote BENCH_datapath.json ({} bytes).", json.len());

    for w in &report.workloads {
        println!(
            "{}: construction speedup {:.2}x (bar: >= {:.1}x), pipeline clones 0 edges",
            w.workload, w.construction.speedup, report.required_construction_speedup
        );
        assert!(
            w.construction.speedup >= report.required_construction_speedup,
            "{}: construction speedup {:.2}x fell below the {:.1}x acceptance bar",
            w.workload,
            w.construction.speedup,
            report.required_construction_speedup
        );
    }
    println!("Expected shape: construction speedup well above the 1.3x acceptance bar at");
    println!("RC_THREADS=1 (~3-4x observed), pipeline edges-materialized 0 on the new path.");
}
