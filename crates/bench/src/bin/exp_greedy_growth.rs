//! Experiment E10 — the `GreedyMatch` growth of Lemma 3.2: while the running
//! matching is small, every one of the first ~k/3 steps adds Ω(MM(G)/k) edges.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_greedy_growth`.

use bench::table::fmt_f;
use bench::{trial_seed, Table};
use coresets::greedy_match::greedy_match;
use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::CoresetParams;
use graph::gen::bipartite::planted_matching_bipartite;
use graph::partition::PartitionedGraph;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 10;

fn main() {
    println!("# E10 — per-step growth of GreedyMatch (Lemma 3.2)\n");
    println!("Paper claim: as long as |M^(i-1)| <= c·MM(G), step i adds at least");
    println!("((1 - 6c - o(1)) / k)·MM(G) edges; over the first k/3 steps this yields a");
    println!("constant-fraction matching. The table reports the edges added by each step,");
    println!("normalised by MM(G)/k.\n");

    let side = 4000usize;
    let k = 12usize;
    let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(EXP_ID, 0));
    let (bg, planted) = planted_matching_bipartite(side, 0.0008, &mut rng);
    let g = bg.to_graph();
    let opt = planted.len(); // perfect matching certifies MM(G) = side
    let per_step_target = opt as f64 / k as f64;

    let partition = PartitionedGraph::random(&g, k, &mut rng).expect("k >= 1");
    let params = CoresetParams::new(g.n(), k);
    let coresets: Vec<Graph> = partition
        .views()
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut mrng = coresets::machine_rng(trial_seed(EXP_ID, 0), i);
            MaximumMatchingCoreset::new().build(p, &params, i, &mut mrng)
        })
        .collect();
    let (final_matching, trace) = greedy_match(g.n(), &coresets);
    assert!(final_matching.is_valid_for(&g));

    let mut table = Table::new(
        format!(
            "E10: GreedyMatch trace (n = {}, k = {k}, MM(G) = {opt})",
            g.n()
        ),
        &[
            "step i",
            "|M^(i)|",
            "|M^(i)| / MM(G)",
            "edges added",
            "added / (MM(G)/k)",
        ],
    );
    for (i, (&size, &added)) in trace.sizes.iter().zip(&trace.added).enumerate() {
        table.add_row(vec![
            (i + 1).to_string(),
            size.to_string(),
            fmt_f(size as f64 / opt as f64),
            added.to_string(),
            fmt_f(added as f64 / per_step_target),
        ]);
    }
    println!("{table}");
    println!(
        "Final GreedyMatch matching: {} edges = {:.3} of MM(G) (Theorem 1 requires >= 1/9).",
        final_matching.len(),
        final_matching.len() as f64 / opt as f64
    );
    println!("Expected shape: the last column stays near 1 for the early steps and decays");
    println!("once the matching already contains a constant fraction of MM(G).");
}
