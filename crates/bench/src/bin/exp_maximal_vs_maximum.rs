//! Experiment E2 — Section 1.2 separation: an adversarially chosen *maximal*
//! matching per machine composes to an Ω(k)-approximation on the trap
//! instance, while the *maximum*-matching coreset of Theorem 1 stays O(1).
//!
//! Regenerate with `cargo run --release -p bench --bin exp_maximal_vs_maximum`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::{AvoidingMaximalMatchingCoreset, DistributedMatching};
use graph::gen::hard::maximal_matching_trap;

const EXP_ID: u64 = 2;
const TRIALS: u64 = 3;

fn main() {
    println!("# E2 — maximum vs arbitrary-maximal matching coresets (Section 1.2)\n");
    println!("Paper claim: there exist maximal matchings whose composition is only an");
    println!("Ω(k)-approximation, so 'greedy/local-search' coresets fail here; the");
    println!("maximum-matching coreset ratio stays flat as k grows.\n");

    let n = 2000usize;
    let mut table = Table::new(
        "E2: approximation ratio vs k on the trap instance (planted matching size = n)",
        &[
            "k",
            "maximum-coreset ratio",
            "adversarial-maximal ratio",
            "ratio blow-up (adversarial / maximum)",
        ],
    );

    for k in [2usize, 4, 8, 16, 32] {
        let inst = maximal_matching_trap(n, 1.0 / k as f64).expect("valid trap parameters");
        let avoid = AvoidingMaximalMatchingCoreset::new(inst.planted_matching.iter().copied());
        let opt = inst.matching_lower_bound(); // the planted perfect matching

        let mut good_ratios = Vec::new();
        let mut bad_ratios = Vec::new();
        for t in 0..TRIALS {
            let seed = trial_seed(EXP_ID, k as u64 * 10 + t);
            let good = DistributedMatching::new(k)
                .run(&inst.graph, seed)
                .expect("k >= 1");
            let bad = DistributedMatching::with_builder(k, avoid.clone())
                .run(&inst.graph, seed)
                .expect("k >= 1");
            assert!(good.matching.is_valid_for(&inst.graph));
            assert!(bad.matching.is_valid_for(&inst.graph));
            good_ratios.push(opt as f64 / good.matching.len().max(1) as f64);
            bad_ratios.push(opt as f64 / bad.matching.len().max(1) as f64);
        }
        let good = Summary::of(&good_ratios);
        let bad = Summary::of(&bad_ratios);
        table.add_row(vec![
            k.to_string(),
            fmt_f(good.mean),
            fmt_f(bad.mean),
            fmt_f(bad.mean / good.mean),
        ]);
    }
    println!("{table}");
    println!("Expected shape: column 2 stays near 1; column 3 grows roughly linearly in k.");
}
