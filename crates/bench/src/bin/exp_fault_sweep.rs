//! E17 — fault-injected protocol runtime: machine-failure sweep, retry
//! recovery, degraded composition, and checksummed resumable arena runs.
//!
//! The coordinator model assumes every machine delivers its coreset. This
//! experiment measures what the protocol does when they don't: the
//! [`distsim::faults`] runtime injects deterministic machine failures
//! (crash before/after summarize, lost message, straggler delay) keyed by
//! `(fault_seed, machine, attempt)`, retries failed machines by **replaying
//! their `machine_rng(seed, i)` stream**, and falls through to degraded
//! composition over the survivors when a machine exhausts its retry budget.
//!
//! The sweep runs machine-failure probability `p ∈ {0, 1/k, 2/k, 3/k}` on a
//! G(n,p) workload and a skewed Chung–Lu power-law workload, for both
//! matching and vertex cover, and records the full fault accounting
//! (injected / retried / recovered / lost, simulated ticks, achieved versus
//! fault-free ratio). Asserted in-binary:
//!
//! * at `p = 0` the faulty runner is **bit-identical** to the fault-free
//!   protocol and injects nothing;
//! * a run whose every machine recovers within the retry budget is
//!   bit-identical to the fault-free run (retry-by-replay is invisible);
//! * **losing any single machine** keeps the composed matching at least as
//!   large as the best surviving machine's own coreset answer — the graceful
//!   degradation guarantee of randomized composable coresets — and keeps the
//!   degraded vertex cover feasible for every surviving machine's edges;
//! * the out-of-core arena path survives injected transient segment I/O
//!   faults and a mid-run kill: the checkpointed, resumed, fault-injected
//!   run is bit-identical to the clean streaming run.
//!
//! Emits `BENCH_faults.json`. Regenerate with
//! `cargo run --release -p bench --bin exp_fault_sweep`
//! (`E17_CI=1` selects the reduced CI workload).

use bench::table::fmt_f;
use bench::Table;
use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::streams::machine_rng;
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::CoresetParams;
use distsim::{
    ArenaProtocol, CoordinatorProtocol, FaultPlan, FaultReport, FaultRunOptions, ProtocolError,
    RetryPolicy,
};
use graph::gen::er::gnp;
use graph::gen::powerlaw::chung_lu;
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{write_arena_file, ArenaFile, Graph};
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

const SEED: u64 = 2017;
const FAULT_SEED: u64 = 0xE17;

/// One cell of the failure-probability sweep.
#[derive(Debug, Serialize)]
struct SweepPoint {
    workload: String,
    problem: String,
    /// Per-site failure probability fed to [`FaultPlan::machine_failure`].
    machine_failure_prob: f64,
    answer_size: usize,
    fault_free_size: usize,
    /// `true` when the output equals the fault-free run exactly.
    bit_identical_to_fault_free: bool,
    faults: FaultReport,
}

/// Outcome of the forced single-machine-loss checks for one workload.
#[derive(Debug, Serialize)]
struct SingleLossCheck {
    workload: String,
    /// Machines individually killed (all of `0..k`).
    losses_checked: usize,
    /// Smallest degraded composed matching over the k single-loss runs.
    worst_degraded_matching: usize,
    /// Largest single surviving coreset answer the composition had to beat.
    best_survivor_floor: usize,
    fault_free_matching: usize,
}

/// Outcome of the resumable out-of-core section.
#[derive(Debug, Serialize)]
struct ArenaSection {
    k: usize,
    segment_io_prob: f64,
    injected: u64,
    retried: u64,
    ticks: u64,
    killed_after_leaves: usize,
    resumed_bit_identical: bool,
}

/// The whole `BENCH_faults.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    ci_mode: bool,
    seed: u64,
    fault_seed: u64,
    k: usize,
    retry_max_attempts: u32,
    backoff_ticks: u64,
    points: Vec<SweepPoint>,
    single_loss: Vec<SingleLossCheck>,
    arena: ArenaSection,
}

/// Rebuilds each machine's coreset exactly as the protocol does and returns
/// the per-machine coreset answers (the size of a maximum matching of each
/// machine's own coreset).
fn per_machine_answers(g: &Graph, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let partition = PartitionedGraph::new(g, k, PartitionStrategy::Random, &mut rng)
        .expect("k >= 1 and the graph is non-empty");
    let params = CoresetParams::new(g.n(), k);
    let builder = MaximumMatchingCoreset::new();
    partition
        .views()
        .iter()
        .enumerate()
        .map(|(i, piece)| {
            let coreset = builder.build(*piece, &params, i, &mut machine_rng(seed, i));
            maximum_matching(&coreset).len()
        })
        .collect()
}

fn main() {
    let ci_mode = std::env::var("E17_CI").is_ok();
    let (n, k, sweep_steps) = if ci_mode {
        (1200usize, 6usize, 3usize)
    } else {
        (4000usize, 8usize, 4usize)
    };
    let retry = RetryPolicy {
        max_attempts: 8,
        backoff_ticks: 2,
    };

    println!("# E17: fault-injected, fault-tolerant protocol runtime\n");
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let er = gnp(n, 12.0 / n as f64, &mut rng);
    let skew = chung_lu(n, 2.5, 8.0, &mut rng);
    let workloads: [(&str, &Graph); 2] = [("gnp", &er), ("chung-lu(2.5)", &skew)];
    println!(
        "Workloads: gnp n = {n}, m = {}; chung-lu n = {n}, m = {}; k = {k} machines, \
         retry budget {} attempts, base backoff {} ticks.\n",
        er.m(),
        skew.m(),
        retry.max_attempts,
        retry.backoff_ticks
    );

    let protocol = CoordinatorProtocol::random(k);
    let matching_builder = MaximumMatchingCoreset::new();
    let vc_builder = PeelingVcCoreset::new();
    let mut points = Vec::new();

    let mut table = Table::new(
        format!(
            "Machine-failure sweep (k = {k}, {} attempts)",
            retry.max_attempts
        ),
        &[
            "workload",
            "problem",
            "p",
            "answer",
            "fault-free",
            "injected",
            "retried",
            "lost",
            "ticks",
            "ratio",
        ],
    );

    for (name, g) in workloads {
        let clean_matching = protocol
            .run_matching(g, &matching_builder, SEED)
            .expect("fault-free matching protocol runs");
        let clean_vc = protocol
            .run_vertex_cover(g, &vc_builder, SEED)
            .expect("fault-free vertex-cover protocol runs");

        for step in 0..sweep_steps {
            let p = step as f64 / k as f64;
            let plan = FaultPlan::machine_failure(FAULT_SEED + step as u64, p);

            let faulty = protocol
                .run_matching_faulty(g, &matching_builder, SEED, &plan, &retry)
                .expect("survivor composition never fails under ComposeSurvivors");
            let identical = faulty.run.answer.edges() == clean_matching.answer.edges();
            if step == 0 {
                assert!(
                    identical && faulty.faults.injected == 0,
                    "p = 0 must be bit-identical to the fault-free run"
                );
            }
            if !faulty.faults.degraded {
                assert!(
                    identical,
                    "{name}: every machine recovered, yet the answer diverged \
                     from the fault-free run at p = {p}"
                );
            }
            table.add_row(vec![
                name.to_string(),
                "matching".to_string(),
                fmt_f(p),
                faulty.run.answer.len().to_string(),
                clean_matching.answer.len().to_string(),
                faulty.faults.injected.to_string(),
                faulty.faults.retried.to_string(),
                faulty.faults.lost_machines.len().to_string(),
                faulty.faults.ticks.to_string(),
                faulty
                    .faults
                    .achieved_vs_fault_free
                    .map(fmt_f)
                    .unwrap_or_else(|| "-".to_string()),
            ]);
            points.push(SweepPoint {
                workload: name.to_string(),
                problem: "matching".to_string(),
                machine_failure_prob: p,
                answer_size: faulty.run.answer.len(),
                fault_free_size: clean_matching.answer.len(),
                bit_identical_to_fault_free: identical,
                faults: faulty.faults,
            });

            let faulty_vc = protocol
                .run_vertex_cover_faulty(g, &vc_builder, SEED, &plan, &retry)
                .expect("survivor composition never fails under ComposeSurvivors");
            let identical_vc = faulty_vc.run.answer == clean_vc.answer;
            if !faulty_vc.faults.degraded {
                assert!(
                    identical_vc,
                    "{name}: recovered vertex-cover run diverged at p = {p}"
                );
            }
            points.push(SweepPoint {
                workload: name.to_string(),
                problem: "vertex-cover".to_string(),
                machine_failure_prob: p,
                answer_size: faulty_vc.run.answer.len(),
                fault_free_size: clean_vc.answer.len(),
                bit_identical_to_fault_free: identical_vc,
                faults: faulty_vc.faults,
            });
        }
    }
    println!("{table}");

    // --- Forced single-machine loss: the graceful-degradation guarantee. ---
    let mut single_loss = Vec::new();
    for (name, g) in workloads {
        let clean = protocol
            .run_matching(g, &matching_builder, SEED)
            .expect("fault-free matching protocol runs");
        let survivors_answers = per_machine_answers(g, k, SEED);
        let mut worst = usize::MAX;
        let mut floor = 0usize;
        for lost in 0..k {
            let plan = FaultPlan::new(FAULT_SEED).losing(vec![lost]);
            let run = protocol
                .run_matching_faulty(g, &matching_builder, SEED, &plan, &RetryPolicy::default())
                .expect("losing one of k >= 2 machines leaves survivors");
            let best_survivor = survivors_answers
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != lost)
                .map(|(_, &a)| a)
                .max()
                .expect("k >= 2 leaves at least one survivor");
            assert!(
                run.run.answer.len() >= best_survivor,
                "{name}: losing machine {lost} dropped the composed matching \
                 ({}) below the best surviving coreset answer ({best_survivor})",
                run.run.answer.len()
            );
            worst = worst.min(run.run.answer.len());
            floor = floor.max(best_survivor);

            let vc_plan = FaultPlan::new(FAULT_SEED).losing(vec![lost]);
            let vc_run = protocol
                .run_vertex_cover_faulty(g, &vc_builder, SEED, &vc_plan, &RetryPolicy::default())
                .expect("losing one of k >= 2 machines leaves survivors");
            assert!(vc_run.faults.degraded && vc_run.faults.lost_machines == vec![lost]);
        }
        println!(
            "{name}: all {k} single-machine losses composed ≥ the best survivor \
             (worst degraded matching {worst}, fault-free {}).",
            clean.answer.len()
        );
        single_loss.push(SingleLossCheck {
            workload: name.to_string(),
            losses_checked: k,
            worst_degraded_matching: worst,
            best_survivor_floor: floor,
            fault_free_matching: clean.answer.len(),
        });
    }

    // --- Resumable out-of-core run under segment faults + a mid-run kill. ---
    let mut part_rng = ChaCha8Rng::seed_from_u64(SEED);
    let partition = PartitionedGraph::new(&er, k, PartitionStrategy::Random, &mut part_rng)
        .expect("k >= 1 and the graph is non-empty");
    let arena_path = std::env::temp_dir().join(format!("rc_e17_arena_{}.bin", std::process::id()));
    write_arena_file(&arena_path, &partition).expect("arena file is writable");
    let arena = ArenaFile::open(&arena_path).expect("freshly written arena reopens");
    drop(partition);

    let clean_ooc = ArenaProtocol::tree(2)
        .run_matching(&arena, &matching_builder, SEED)
        .expect("clean arena protocol runs");
    let ckpt_path = std::env::temp_dir().join(format!("rc_e17_ckpt_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let mut seg_plan = FaultPlan::new(FAULT_SEED);
    seg_plan.segment_io_prob = 0.4;
    let killed_after_leaves = k / 2;
    let mut opts = FaultRunOptions {
        plan: seg_plan,
        retry,
        checkpoint: Some(ckpt_path.clone()),
        kill_after_leaves: Some(killed_after_leaves),
    };
    let err = ArenaProtocol::tree(2)
        .run_matching_resumable(&arena, &matching_builder, SEED, &opts)
        .expect_err("the kill knob must interrupt the run");
    assert_eq!(
        err,
        ProtocolError::Interrupted {
            pushed: killed_after_leaves
        }
    );
    opts.kill_after_leaves = None;
    let resumed = ArenaProtocol::tree(2)
        .run_matching_resumable(&arena, &matching_builder, SEED, &opts)
        .expect("resumed run completes");
    let resumed_bit_identical = resumed.run.answer.edges() == clean_ooc.answer.edges();
    assert!(
        resumed_bit_identical,
        "the killed, checkpointed, fault-injected arena run must resume to \
         the clean streaming answer"
    );
    assert!(
        !ckpt_path.exists(),
        "a completed run must remove its checkpoint"
    );
    println!(
        "\nArena: killed after {killed_after_leaves}/{k} leaves under segment-fault \
         injection (io_prob 0.4, {} injected, {} retried), resumed bit-identically.",
        resumed.faults.injected, resumed.faults.retried
    );
    std::fs::remove_file(&arena_path).expect("temp arena file removes");

    let report = BenchReport {
        ci_mode,
        seed: SEED,
        fault_seed: FAULT_SEED,
        k,
        retry_max_attempts: retry.max_attempts,
        backoff_ticks: retry.backoff_ticks,
        points,
        single_loss,
        arena: ArenaSection {
            k,
            segment_io_prob: 0.4,
            injected: resumed.faults.injected,
            retried: resumed.faults.retried,
            ticks: resumed.faults.ticks,
            killed_after_leaves,
            resumed_bit_identical,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_faults.json", &json).expect("BENCH_faults.json is writable");
    println!("Wrote BENCH_faults.json ({} bytes).", json.len());
    println!(
        "Expected shape: recovered runs bit-identical at every p; degraded runs \
         never below the best survivor; ticks grow with injected retries."
    );
}
