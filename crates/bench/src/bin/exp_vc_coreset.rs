//! Experiment E3 — Theorem 2: the peeling coreset gives an O(log n)-approximate
//! vertex cover with coresets of size O(n log n).
//!
//! The reported ratio divides the composed cover by the **maximum matching
//! size**, which lower-bounds the optimum cover, so the column is an upper
//! bound on the true approximation ratio.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_vc_coreset`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::DistributedVertexCover;
use graph::gen::bipartite::random_bipartite;
use graph::gen::er::gnp;
use graph::gen::powerlaw::chung_lu;
use graph::gen::structured::star_forest;
use graph::Graph;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 3;
const TRIALS: u64 = 3;

fn workloads(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        (
            "erdos-renyi(n=6000, p=0.001)".to_string(),
            gnp(6000, 0.001, &mut rng),
        ),
        (
            "bipartite(n=4000+4000, p=0.001)".to_string(),
            random_bipartite(4000, 4000, 0.001, &mut rng).to_graph(),
        ),
        ("star-forest(200 x 40)".to_string(), star_forest(200, 40)),
        (
            "chung-lu(n=6000, gamma=2.3)".to_string(),
            chung_lu(6000, 2.3, 6.0, &mut rng),
        ),
    ]
}

fn main() {
    println!("# E3 — peeling vertex-cover coreset (Theorem 2)\n");
    println!("Paper claim: O(log n)-approximation with coresets of size O(n log n);");
    println!("the ratio should stay well below log2(n) and be flat in k.\n");

    let mut table = Table::new(
        "E3: composed peeling-coreset cover vs the matching lower bound on OPT",
        &[
            "workload",
            "k",
            "log2(n)",
            "cover size",
            "opt lower bound",
            "ratio (mean)",
            "coreset size/machine",
            "n log2(n)",
        ],
    );

    for k in [2usize, 4, 8, 16, 32] {
        for (name, g) in workloads(trial_seed(EXP_ID, 0)) {
            let opt_lb = maximum_matching(&g).len().max(1);
            let mut ratios = Vec::new();
            let mut covers = Vec::new();
            let mut coreset_sizes = Vec::new();
            for t in 0..TRIALS {
                let result = DistributedVertexCover::new(k)
                    .run(&g, trial_seed(EXP_ID, 50 + t))
                    .expect("k >= 1");
                assert!(result.cover.covers(&g), "composed cover must be feasible");
                ratios.push(result.cover.len() as f64 / opt_lb as f64);
                covers.push(result.cover.len() as f64);
                coreset_sizes.push(result.coreset_sizes.iter().sum::<usize>() as f64 / k as f64);
            }
            let log_n = (g.n() as f64).log2();
            let ratio = Summary::of(&ratios);
            let cover = Summary::of(&covers);
            let size = Summary::of(&coreset_sizes);
            let n_log_n = g.n() as f64 * log_n;
            table.add_row(vec![
                name,
                k.to_string(),
                fmt_f(log_n),
                fmt_f(cover.mean),
                opt_lb.to_string(),
                fmt_f(ratio.mean),
                fmt_f(size.mean),
                fmt_f(n_log_n),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: ratio column well below log2(n), flat in k;");
    println!("coreset size/machine well below n log2(n).");
}
