//! Experiment E14 — the vertex-cover hot path, old vs new.
//!
//! E13 made the maximum-matching side of a protocol run 43x faster, which
//! left the vertex-cover half as the last naive hot path: the Parnas–Ron
//! peeling at the heart of `VC-Coreset` rescanned and `retain`ed the full
//! residual edge buffer every threshold round (`O(m · rounds)`) and
//! allocated a fresh `O(n)` degree array per round, and the coordinator's
//! composition materialized the union of the residual subgraphs before
//! 2-approximating it. This experiment isolates the `vertexcover::VcEngine`
//! overhaul:
//!
//! * **stamped degree pre-screen** — residual degrees are counted once into
//!   epoch-stamped workspace arrays (`O(m)`, no `O(n)` pass); threshold
//!   schedules that cannot peel anything (sparse pieces of a random
//!   `k`-partition) finish right there;
//! * **bucket-queue rounds** — otherwise the piece is compacted, one CSR is
//!   built over the live vertices, and an indexed bucket structure peels
//!   each round in `O(vertices peeled + edges removed)`;
//! * **union-free composition** — the coordinator's 2-approximation scans
//!   the residual edge slices in machine order instead of materializing
//!   `Graph::union` first.
//!
//! The **legacy path is frozen in this binary** (`mod legacy`): a faithful
//! copy of the pre-engine peeling (per-round rescans, per-round `vec![0; n]`
//! degrees, per-call `vec![false; n]` flags) and of the union-materializing
//! composition, so the comparison survives future changes to the live
//! crates.
//!
//! Three phases are timed on `G(n, p)` with `k = 16` (at `RC_THREADS=1`):
//! the `k` per-piece peelings, the coordinator's composed cover, and the
//! full vertex-cover pipeline end to end. The per-piece peeling outcomes are
//! asserted **identical round by round** (peeled sets, thresholds and
//! residuals), the composed covers identical vertex for vertex, the
//! `graph::metrics::vc_peel_scratch_elems` counter is asserted **zero**
//! across the engine runs (and positive on the legacy path), the engine's
//! `full_resets` counter is asserted zero, and the end-to-end speedup must
//! clear the acceptance bar (≥ 2x at the default `n = 10⁵` workload) — the
//! fixed-seed regression mirroring E13's `required_pipeline_speedup`.
//!
//! Emits machine-readable `BENCH_vc.json` (uploaded as a CI artifact).
//! CI runs the smaller `E14_CI=1` workload with a correspondingly relaxed
//! bar; regenerate the committed numbers with `RC_THREADS=1 cargo run
//! --release -p bench --bin exp_vc_hotpath`.

use bench::table::fmt_f;
use bench::{Summary, Table};
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{compose_vertex_cover, CoresetParams, DistributedVertexCover};
use graph::gen::er::gnp;
use graph::partition::PartitionedGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;
use vertexcover::VcEngine;

const SEED: u64 = 2017;
const K: usize = 16;

/// The pre-engine vertex-cover path, reproduced faithfully from the seed so
/// the benchmark keeps measuring the same baseline forever.
mod legacy {
    use coresets::CoresetParams;
    use graph::partition::PartitionedGraph;
    use graph::{Edge, Graph, GraphRef, VertexId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Seed peeling: one edge-buffer copy up front, then every round
    /// allocates a fresh `vec![0; n]` degree array, rescans the residual
    /// buffer, scans all `n` vertex ids for the peel set and `retain`s the
    /// buffer — `O((m + n) · rounds)`. Scratch allocations are recorded in
    /// `graph::metrics::vc_peel_scratch_elems`, like the library's reference
    /// implementation.
    pub fn peel_with_thresholds<G: GraphRef + ?Sized>(
        g: &G,
        thresholds: &[usize],
    ) -> (Vec<Vec<VertexId>>, Vec<usize>, Graph) {
        let n = g.n();
        let mut edges: Vec<Edge> = g.edges().to_vec();
        graph::metrics::record_vc_peel_scratch(edges.len());
        let mut peeled_per_round = Vec::with_capacity(thresholds.len());
        let mut used_thresholds = Vec::with_capacity(thresholds.len());
        let mut peeled_now = vec![false; n];
        graph::metrics::record_vc_peel_scratch(n);

        for &t in thresholds {
            if t == 0 {
                continue;
            }
            let mut degrees = vec![0usize; n];
            graph::metrics::record_vc_peel_scratch(n);
            for e in &edges {
                degrees[e.u as usize] += 1;
                degrees[e.v as usize] += 1;
            }
            let peeled: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| degrees[v as usize] >= t)
                .collect();
            for &v in &peeled {
                peeled_now[v as usize] = true;
            }
            edges.retain(|e| !peeled_now[e.u as usize] && !peeled_now[e.v as usize]);
            for &v in &peeled {
                peeled_now[v as usize] = false;
            }
            peeled_per_round.push(peeled);
            used_thresholds.push(t);
        }
        (
            peeled_per_round,
            used_thresholds,
            Graph::from_edges_unchecked(n, edges),
        )
    }

    /// Seed 2-approximation: greedy maximal matching with a `vec![false; n]`
    /// matched array, both endpoints of every chosen edge.
    pub fn two_approx_vertices(g: &Graph) -> Vec<VertexId> {
        let mut matched = vec![false; g.n()];
        let mut cover = Vec::new();
        for e in g.edges() {
            if !matched[e.u as usize] && !matched[e.v as usize] {
                matched[e.u as usize] = true;
                matched[e.v as usize] = true;
                cover.push(e.u);
                cover.push(e.v);
            }
        }
        cover.sort_unstable();
        cover.dedup();
        cover
    }

    /// One machine's VC coreset on the seed path.
    pub struct LegacyVcOutput {
        pub fixed_vertices: Vec<VertexId>,
        pub residual: Graph,
    }

    pub fn build_coreset<G: GraphRef + ?Sized>(g: &G, params: &CoresetParams) -> LegacyVcOutput {
        let schedule = params.peeling_schedule();
        let (peeled_per_round, _, residual) = peel_with_thresholds(g, &schedule);
        LegacyVcOutput {
            fixed_vertices: peeled_per_round.into_iter().flatten().collect(),
            residual,
        }
    }

    /// Seed composition: materialize the union of the residual subgraphs,
    /// 2-approximate it, add the fixed vertices. Returns the sorted cover.
    pub fn compose(outputs: &[LegacyVcOutput]) -> Vec<VertexId> {
        let residuals: Vec<&Graph> = outputs.iter().map(|o| &o.residual).collect();
        let union = Graph::union(&residuals);
        let mut cover = two_approx_vertices(&union);
        for o in outputs {
            cover.extend_from_slice(&o.fixed_vertices);
        }
        cover.sort_unstable();
        cover.dedup();
        cover
    }

    /// The full pre-engine vertex-cover pipeline: random partition into the
    /// arena, seed peeling per piece, union-materializing composition.
    /// Returns the sorted cover vertices.
    pub fn pipeline(g: &Graph, k: usize, seed: u64) -> Vec<VertexId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::random(g, k, &mut rng).expect("k >= 1");
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<LegacyVcOutput> = partition
            .views()
            .iter()
            .map(|p| build_coreset(p, &params))
            .collect();
        compose(&outputs)
    }
}

/// One phase's old-vs-new measurement.
#[derive(Debug, Serialize)]
struct PhaseSample {
    /// Median wall-clock seconds of the legacy (pre-engine) path.
    old_median_secs: f64,
    /// Median wall-clock seconds of the engine path.
    new_median_secs: f64,
    /// `old / new` — > 1 means the new path is faster.
    speedup: f64,
}

fn phase(old: f64, new: f64) -> PhaseSample {
    PhaseSample {
        old_median_secs: old,
        new_median_secs: new,
        speedup: old / new.max(f64::MIN_POSITIVE),
    }
}

/// All measurements for one workload.
#[derive(Debug, Serialize)]
struct WorkloadBench {
    workload: String,
    n: usize,
    m: usize,
    k: usize,
    /// Median seconds to build the random partition (shared by both paths —
    /// the non-VC remainder of the pipeline).
    partition_overhead_secs: f64,
    /// All `k` per-piece peelings, summed.
    per_piece: PhaseSample,
    /// The coordinator's composed cover over fixed coresets (the new path
    /// never materializes the residual union).
    composed: PhaseSample,
    /// The full pipeline: partition → per-piece coresets → composed cover.
    pipeline: PhaseSample,
    /// Final composed cover size (identical between the paths).
    cover_size: usize,
    /// Whether every per-piece peeling outcome was identical round by round
    /// between the legacy path and the engine (asserted).
    per_piece_outcomes_identical: bool,
    /// Whether the composed covers were identical vertex for vertex
    /// (asserted).
    composed_covers_identical: bool,
    /// Scratch words the legacy peeling allocated during one per-piece pass
    /// (edge-buffer copies + per-round degree arrays + peel flags).
    legacy_peel_scratch_elems: u64,
    /// Scratch words recorded during the engine's per-piece + composed +
    /// pipeline passes — asserted 0 (zero per-round edge-buffer
    /// reallocations).
    engine_peel_scratch_elems: u64,
    /// `O(n)` workspace resets in the engine during those passes — asserted 0.
    engine_full_resets: u64,
}

/// The whole `BENCH_vc.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    p: f64,
    k: usize,
    per_piece_reps: usize,
    composed_reps: usize,
    pipeline_reps: usize,
    /// Acceptance bar: the end-to-end VC pipeline must be at least this much
    /// faster on the new path (the E14 fixed-seed regression).
    required_pipeline_speedup: f64,
    /// True when the reduced `E14_CI=1` workload was measured.
    ci_mode: bool,
    workloads: Vec<WorkloadBench>,
}

/// Times `run` with one warm-up followed by `reps` timed repetitions; asserts
/// every repetition returns the same answer and reports the median seconds.
fn median_secs<T: Eq + std::fmt::Debug>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let reference = run();
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let again = run();
        secs.push(start.elapsed().as_secs_f64());
        assert_eq!(again, reference, "timed runs must be deterministic");
    }
    (Summary::of(&secs).median, reference)
}

struct Reps {
    per_piece: usize,
    composed: usize,
    pipeline: usize,
}

fn bench_workload(n: usize, p: f64, reps: &Reps) -> WorkloadBench {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let g = gnp(n, p, &mut rng);
    let params = CoresetParams::new(n, K);
    let schedule = params.peeling_schedule();

    // Overhead: the partition build both paths share (E12's territory).
    let (partition_overhead_secs, _) = median_secs(5, || {
        let mut r = ChaCha8Rng::seed_from_u64(SEED + 1);
        let part = PartitionedGraph::random(&g, K, &mut r).expect("k >= 1");
        part.piece_sizes().iter().sum::<usize>()
    });

    let mut r = ChaCha8Rng::seed_from_u64(SEED + 1);
    let partition = PartitionedGraph::random(&g, K, &mut r).expect("k >= 1");
    let views = partition.views();

    // Identity pass (untimed): the engine must reproduce the legacy peeling
    // round by round — peeled sets, thresholds and residual graphs — with
    // zero recorded scratch elements and zero O(n) workspace resets.
    graph::metrics::reset_vc_peel_scratch();
    let mut engine = VcEngine::new();
    let engine_outcomes: Vec<_> = views
        .iter()
        .map(|v| engine.peel_with_thresholds(v, &schedule))
        .collect();
    let engine_scratch_after_pieces = graph::metrics::vc_peel_scratch_elems();
    let mut per_piece_outcomes_identical = true;
    for (view, outcome) in views.iter().zip(&engine_outcomes) {
        let (peeled, thresholds, residual) = legacy::peel_with_thresholds(view, &schedule);
        per_piece_outcomes_identical &= peeled == outcome.peeled_per_round
            && thresholds == outcome.thresholds
            && residual == outcome.residual;
    }
    assert!(
        per_piece_outcomes_identical,
        "the engine must reproduce the legacy peeling round by round"
    );
    let engine_full_resets = engine.workspace().full_resets();
    assert_eq!(
        engine_full_resets, 0,
        "epoch stamps must never fall back to an O(n) reset"
    );
    assert_eq!(
        engine_scratch_after_pieces, 0,
        "the engine peeling path must record zero scratch elements"
    );

    // One legacy per-piece pass with a fresh counter, to report its scratch.
    graph::metrics::reset_vc_peel_scratch();
    for view in &views {
        let _ = legacy::peel_with_thresholds(view, &schedule);
    }
    let legacy_peel_scratch_elems = graph::metrics::vc_peel_scratch_elems();
    assert!(
        legacy_peel_scratch_elems > 0,
        "the legacy path must record its per-round scratch"
    );

    // Phase 1: all k per-piece peelings.
    graph::metrics::reset_vc_peel_scratch();
    let (old_pp, old_sum) = median_secs(reps.per_piece, || {
        views
            .iter()
            .map(|v| {
                let (peeled, _, residual) = legacy::peel_with_thresholds(v, &schedule);
                peeled.iter().map(Vec::len).sum::<usize>() + residual.m()
            })
            .sum::<usize>()
    });
    graph::metrics::reset_vc_peel_scratch();
    let (new_pp, new_sum) = median_secs(reps.per_piece, || {
        let mut e = VcEngine::new();
        views
            .iter()
            .map(|v| {
                let out = e.peel_with_thresholds(v, &schedule);
                out.peeled_count() + out.residual.m()
            })
            .sum::<usize>()
    });
    assert_eq!(old_sum, new_sum, "per-piece peeling sizes must agree");
    let engine_scratch_phase1 = graph::metrics::vc_peel_scratch_elems();
    assert_eq!(engine_scratch_phase1, 0, "engine per-piece pass stays at 0");

    // Phase 2: the coordinator's composed cover over fixed coresets.
    let builder = PeelingVcCoreset::new();
    let outputs: Vec<VcCoresetOutput> = views
        .iter()
        .enumerate()
        .map(|(i, v)| builder.build(*v, &params, i, &mut coresets::machine_rng(SEED, i)))
        .collect();
    let legacy_outputs: Vec<legacy::LegacyVcOutput> = outputs
        .iter()
        .map(|o| legacy::LegacyVcOutput {
            fixed_vertices: o.fixed_vertices.clone(),
            residual: o.residual.clone(),
        })
        .collect();
    let (old_comp, old_cover) = median_secs(reps.composed, || legacy::compose(&legacy_outputs));
    let (new_comp, new_cover) = median_secs(reps.composed, || {
        compose_vertex_cover(&outputs).sorted_vertices()
    });
    let composed_covers_identical = old_cover == new_cover;
    assert!(
        composed_covers_identical,
        "the union-free composition must return the exact legacy cover"
    );

    // Phase 3: the full pipeline, end to end. The legacy pipeline records
    // scratch elements; reset before the engine pipeline so the final zero
    // assertion covers exactly the engine protocol runs.
    let dv = DistributedVertexCover::new(K);
    let (old_pipe, old_ans) = median_secs(reps.pipeline, || legacy::pipeline(&g, K, SEED + 2));
    graph::metrics::reset_vc_peel_scratch();
    let (new_pipe, new_ans) = median_secs(reps.pipeline, || {
        dv.run(&g, SEED + 2)
            .expect("k >= 1")
            .cover
            .sorted_vertices()
    });
    assert_eq!(
        old_ans, new_ans,
        "end-to-end covers must be identical between the paths"
    );
    let engine_peel_scratch_elems = graph::metrics::vc_peel_scratch_elems();
    assert_eq!(
        engine_peel_scratch_elems, 0,
        "a full engine protocol run performs zero per-round edge-buffer reallocations"
    );

    WorkloadBench {
        workload: format!("gnp({n}, {p})"),
        n,
        m: g.m(),
        k: K,
        partition_overhead_secs,
        per_piece: phase(old_pp, new_pp),
        composed: phase(old_comp, new_comp),
        pipeline: phase(old_pipe, new_pipe),
        cover_size: new_ans.len(),
        per_piece_outcomes_identical,
        composed_covers_identical,
        legacy_peel_scratch_elems,
        engine_peel_scratch_elems,
        engine_full_resets,
    }
}

fn main() {
    let ci_mode = std::env::var("E14_CI").is_ok();
    // CI runs a scaled-down instance of the same regime; the full workload is
    // the acceptance workload of the vertex-cover overhaul.
    let (n, p, required_pipeline_speedup) = if ci_mode {
        (25_000, 8e-4, 1.5)
    } else {
        (100_000, 2e-4, 2.0)
    };
    let reps = Reps {
        per_piece: 3,
        composed: 3,
        pipeline: 2,
    };

    println!("# E14 — vertex-cover hot path: bucket-queue peeling engine\n");
    println!("Old path (frozen in this binary): per-round residual rescans + retains, a fresh");
    println!("vec![0; n] degree array per round, vec![false; n] peel/matched flags per call,");
    println!("union-materializing composition. New path: stamped degree pre-screen, compacted");
    println!("CSR + bucket-queue rounds, union-free composed 2-approximation. k = {K},");
    println!("RC_THREADS=1.\n");

    let w = bench_workload(n, p, &reps);

    let mut table = Table::new(
        format!("E14: vertex-cover hot path old vs new (k = {K} machines)"),
        &["workload", "m", "phase", "old secs", "new secs", "speedup"],
    );
    for (name, s) in [
        ("per-piece peelings", &w.per_piece),
        ("composed cover", &w.composed),
        ("pipeline", &w.pipeline),
    ] {
        table.add_row(vec![
            w.workload.clone(),
            w.m.to_string(),
            name.to_string(),
            format!("{:.6}", s.old_median_secs),
            format!("{:.6}", s.new_median_secs),
            fmt_f(s.speedup),
        ]);
    }
    table.add_row(vec![
        w.workload.clone(),
        w.m.to_string(),
        "partition overhead".to_string(),
        format!("{:.6}", w.partition_overhead_secs),
        format!("{:.6}", w.partition_overhead_secs),
        fmt_f(1.0),
    ]);
    println!("{table}");

    println!(
        "legacy peel scratch elems {} | engine peel scratch elems {} | engine full resets {}",
        w.legacy_peel_scratch_elems, w.engine_peel_scratch_elems, w.engine_full_resets
    );
    println!(
        "per-piece outcomes identical: {} | composed covers identical: {}",
        w.per_piece_outcomes_identical, w.composed_covers_identical
    );

    let report = BenchReport {
        seed: SEED,
        p,
        k: K,
        per_piece_reps: reps.per_piece,
        composed_reps: reps.composed,
        pipeline_reps: reps.pipeline,
        required_pipeline_speedup,
        ci_mode,
        workloads: vec![w],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_vc.json", &json).expect("BENCH_vc.json is writable");
    println!("Wrote BENCH_vc.json ({} bytes).", json.len());

    for w in &report.workloads {
        println!(
            "{}: pipeline speedup {:.2}x (bar: >= {:.1}x)",
            w.workload, w.pipeline.speedup, report.required_pipeline_speedup
        );
        assert!(
            w.pipeline.speedup >= report.required_pipeline_speedup,
            "{}: pipeline speedup {:.2}x fell below the {:.1}x acceptance bar",
            w.workload,
            w.pipeline.speedup,
            report.required_pipeline_speedup
        );
    }
    println!("Expected shape: per-piece peelings faster (the stamped pre-screen replaces");
    println!("every per-round rescan; the shared residual copy bounds the ratio), the");
    println!("composed cover several times faster (no union materialization), and the");
    println!("end-to-end pipeline comfortably above the bar.");
}
