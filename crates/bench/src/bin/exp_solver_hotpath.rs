//! Experiment E13 — the maximum-matching solver hot path, old vs new.
//!
//! E12 made partition construction 2.4–3.1x faster but left the end-to-end
//! pipeline flat: the run is dominated by the per-piece and coordinator
//! maximum-matching solves. This experiment isolates the solver overhaul:
//!
//! * **vertex compaction** — each piece is relabeled onto its non-isolated
//!   vertices before solving (`graph::VertexCompactor`), so per-vertex solver
//!   state scales with the live vertex count, not the full `n`;
//! * **epoch-based lazy resets** — the blossom search state lives in a
//!   reusable `BlossomWorkspace` whose `used`/`parent`/`base` arrays are
//!   invalidated by bumping a `u32` epoch instead of `O(n)` clears, and whose
//!   LCA/contraction marks replace the per-call `vec![false; n]` allocations;
//! * **fused bipartite dispatch + warm starts** — one CSR is shared by the
//!   2-colouring check and the solver (no intermediate `BipartiteGraph`
//!   materialization), and the coordinator's composed solve is seeded with
//!   the best per-machine matching.
//!
//! The **legacy path is frozen in this binary** (`mod legacy`): it is a
//! faithful copy of the pre-overhaul solver — per-search `O(n)` resets,
//! per-call LCA allocations, colour-then-materialize Hopcroft–Karp dispatch,
//! cold coordinator solves — so the comparison survives future changes to the
//! live crates.
//!
//! Three phases are timed on `G(n, p)` with `k = 16` (at `RC_THREADS=1`):
//! per-piece solves, the coordinator's composed solve, and the full matching
//! pipeline end to end; partition construction is timed separately as the
//! remaining overhead. The per-piece solves are asserted **edge-identical**
//! between the paths (the workspace rewrite is step-identical to the classic
//! search), the composed/end-to-end answers size-identical (both paths
//! return maximum matchings of identical unions; the warm-started solve may
//! pick different edges), the workspace's `full_resets` counter is asserted
//! zero, and the end-to-end speedup must clear the acceptance bar (≥ 2x at
//! the default `n = 10⁵` workload) — the fixed-seed regression mirroring
//! E12's `required_construction_speedup`.
//!
//! Emits machine-readable `BENCH_solver.json` (uploaded as a CI artifact).
//! CI runs the smaller `E13_CI=1` workload with a correspondingly relaxed
//! bar; regenerate the committed numbers with `RC_THREADS=1 cargo run
//! --release -p bench --bin exp_solver_hotpath`.

use bench::table::fmt_f;
use bench::{Summary, Table};
use coresets::{solve_composed_matching, DistributedMatching};
use graph::gen::er::gnp;
use graph::partition::PartitionedGraph;
use graph::Graph;
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use matching::MatchingEngine;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 2017;
const K: usize = 16;

/// The pre-overhaul solver path, reproduced faithfully from the seed so the
/// benchmark keeps measuring the same baseline forever.
mod legacy {
    use graph::partition::PartitionedGraph;
    use graph::{BipartiteGraph, Csr, Edge, Graph, GraphRef, VertexId};
    use matching::hopcroft_karp::hopcroft_karp;
    use matching::matching::Matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::VecDeque;

    const NONE: u32 = u32::MAX;

    /// Seed blossom: `O(n)` clears of `used`/`parent`/`base` per augmenting
    /// search, fresh `vec![false; n]` in every LCA/contraction, full `0..n`
    /// contraction sweep.
    pub fn blossom_maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
        let n = g.n();
        let adj = Csr::from_ref(g);
        let mut mate = vec![NONE; n];

        for v in 0..n as u32 {
            if mate[v as usize] == NONE {
                for &w in adj.neighbors(v) {
                    if mate[w as usize] == NONE {
                        mate[v as usize] = w;
                        mate[w as usize] = v;
                        break;
                    }
                }
            }
        }

        let mut state = BlossomState {
            n,
            parent: vec![NONE; n],
            base: (0..n as u32).collect(),
            queue: VecDeque::new(),
            used: vec![false; n],
            blossom: vec![false; n],
        };

        for v in 0..n as u32 {
            if mate[v as usize] == NONE && adj.degree(v) > 0 {
                state.augment_from(v, &adj, &mut mate);
            }
        }

        let mut edges = Vec::new();
        for v in 0..n as u32 {
            let w = mate[v as usize];
            if w != NONE && v < w {
                edges.push(Edge::new(v, w));
            }
        }
        Matching::from_edges(edges)
    }

    struct BlossomState {
        n: usize,
        parent: Vec<u32>,
        base: Vec<u32>,
        queue: VecDeque<u32>,
        used: Vec<bool>,
        blossom: Vec<bool>,
    }

    impl BlossomState {
        fn augment_from(&mut self, root: u32, adj: &Csr, mate: &mut [u32]) -> bool {
            self.used.iter_mut().for_each(|x| *x = false);
            self.parent.iter_mut().for_each(|x| *x = NONE);
            for (i, b) in self.base.iter_mut().enumerate() {
                *b = i as u32;
            }
            self.queue.clear();
            self.queue.push_back(root);
            self.used[root as usize] = true;

            while let Some(v) = self.queue.pop_front() {
                for &to in adj.neighbors(v) {
                    if self.base[v as usize] == self.base[to as usize] || mate[v as usize] == to {
                        continue;
                    }
                    if to == root
                        || (mate[to as usize] != NONE
                            && self.parent[mate[to as usize] as usize] != NONE)
                    {
                        let cur_base = self.lca(v, to, mate);
                        self.blossom.iter_mut().for_each(|x| *x = false);
                        self.mark_path(v, cur_base, to, mate);
                        self.mark_path(to, cur_base, v, mate);
                        for i in 0..self.n {
                            if self.blossom[self.base[i] as usize] {
                                self.base[i] = cur_base;
                                if !self.used[i] {
                                    self.used[i] = true;
                                    self.queue.push_back(i as u32);
                                }
                            }
                        }
                    } else if self.parent[to as usize] == NONE {
                        self.parent[to as usize] = v;
                        if mate[to as usize] == NONE {
                            self.augment_along(to, mate);
                            return true;
                        }
                        let next = mate[to as usize];
                        self.used[next as usize] = true;
                        self.queue.push_back(next);
                    }
                }
            }
            false
        }

        fn lca(&self, mut a: u32, mut b: u32, mate: &[u32]) -> u32 {
            let mut visited = vec![false; self.n];
            loop {
                a = self.base[a as usize];
                visited[a as usize] = true;
                if mate[a as usize] == NONE {
                    break;
                }
                a = self.parent[mate[a as usize] as usize];
            }
            loop {
                b = self.base[b as usize];
                if visited[b as usize] {
                    return b;
                }
                b = self.parent[mate[b as usize] as usize];
            }
        }

        fn mark_path(&mut self, mut v: u32, base: u32, mut child: u32, mate: &[u32]) {
            while self.base[v as usize] != base {
                self.blossom[self.base[v as usize] as usize] = true;
                self.blossom[self.base[mate[v as usize] as usize] as usize] = true;
                self.parent[v as usize] = child;
                child = mate[v as usize];
                v = self.parent[mate[v as usize] as usize];
            }
        }

        fn augment_along(&self, mut v: u32, mate: &mut [u32]) {
            while v != NONE {
                let pv = self.parent[v as usize];
                let ppv = mate[pv as usize];
                mate[v as usize] = pv;
                mate[pv as usize] = v;
                v = ppv;
            }
        }
    }

    /// Seed 2-colouring: builds its own CSR, BFS-seeds every vertex
    /// (isolated ones included).
    pub fn two_coloring<G: GraphRef + ?Sized>(g: &G) -> Option<Vec<u8>> {
        let adj = Csr::from_ref(g);
        let mut color = vec![u8::MAX; g.n()];
        let mut queue = VecDeque::new();
        for start in 0..g.n() {
            if color[start] != u8::MAX {
                continue;
            }
            color[start] = 0;
            queue.push_back(start as u32);
            while let Some(v) = queue.pop_front() {
                for &w in adj.neighbors(v) {
                    if color[w as usize] == u8::MAX {
                        color[w as usize] = 1 - color[v as usize];
                        queue.push_back(w);
                    } else if color[w as usize] == color[v as usize] {
                        return None;
                    }
                }
            }
        }
        Some(color)
    }

    /// Seed Hopcroft–Karp dispatch: relabel to left/right local ids,
    /// materialize the `(l, r)` pair vector and a `BipartiteGraph`, solve,
    /// map back.
    fn hopcroft_karp_on_coloring<G: GraphRef + ?Sized>(g: &G, color: &[u8]) -> Matching {
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        let mut to_local = vec![0u32; g.n()];
        for v in 0..g.n() {
            if color[v] == 0 {
                to_local[v] = left_ids.len() as u32;
                left_ids.push(v as VertexId);
            } else {
                to_local[v] = right_ids.len() as u32;
                right_ids.push(v as VertexId);
            }
        }
        let pairs: Vec<(VertexId, VertexId)> = g
            .edges()
            .iter()
            .map(|e| {
                if color[e.u as usize] == 0 {
                    (to_local[e.u as usize], to_local[e.v as usize])
                } else {
                    (to_local[e.v as usize], to_local[e.u as usize])
                }
            })
            .collect();
        let bg = BipartiteGraph::from_pairs(left_ids.len(), right_ids.len(), pairs)
            .expect("local ids are in range by construction");
        let matched = hopcroft_karp(&bg);
        let edges = matched
            .into_iter()
            .map(|(l, r)| Edge::new(left_ids[l as usize], right_ids[r as usize]))
            .collect();
        Matching::from_edges(edges)
    }

    /// Seed `Auto` dispatch: colour (building one CSR, discarded), then
    /// either materialize a `BipartiteGraph` for Hopcroft–Karp or run the
    /// `O(n)`-reset blossom.
    pub fn maximum_matching<G: GraphRef + ?Sized>(g: &G) -> Matching {
        match two_coloring(g) {
            Some(coloring) => hopcroft_karp_on_coloring(g, &coloring),
            None => blossom_maximum_matching(g),
        }
    }

    /// The full pre-overhaul matching pipeline: random partition into the
    /// arena, seed solver per piece, union, cold seed solve at the
    /// coordinator. Returns the final matching size.
    pub fn pipeline(g: &Graph, k: usize, seed: u64) -> usize {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::random(g, k, &mut rng).expect("k >= 1");
        let coresets: Vec<Graph> = partition
            .views()
            .iter()
            .map(|p| Graph::from_edges_unchecked(p.n(), maximum_matching(p).into_edges()))
            .collect();
        let refs: Vec<&Graph> = coresets.iter().collect();
        let composed = Graph::union(&refs);
        maximum_matching(&composed).len()
    }
}

/// One phase's old-vs-new measurement.
#[derive(Debug, Serialize)]
struct PhaseSample {
    /// Median wall-clock seconds of the legacy (pre-overhaul) solver path.
    old_median_secs: f64,
    /// Median wall-clock seconds of the engine (compaction + epochs + warm
    /// start) path.
    new_median_secs: f64,
    /// `old / new` — > 1 means the new path is faster.
    speedup: f64,
}

fn phase(old: f64, new: f64) -> PhaseSample {
    PhaseSample {
        old_median_secs: old,
        new_median_secs: new,
        speedup: old / new.max(f64::MIN_POSITIVE),
    }
}

/// All measurements for one workload.
#[derive(Debug, Serialize)]
struct WorkloadBench {
    workload: String,
    n: usize,
    m: usize,
    k: usize,
    /// Median seconds to build the random partition (shared by both paths —
    /// the non-solver remainder of the pipeline).
    partition_overhead_secs: f64,
    /// All `k` per-piece maximum-matching solves, summed.
    per_piece: PhaseSample,
    /// The coordinator's composed solve (union + maximum matching; the new
    /// path warm-starts from the best per-machine matching).
    composed: PhaseSample,
    /// The full pipeline: partition → per-piece coresets → composed solve.
    pipeline: PhaseSample,
    /// Final composed matching size (identical between the paths).
    matching_size: usize,
    /// Whether every per-piece matching was edge-identical between the
    /// legacy solver and the engine (asserted).
    per_piece_matchings_identical: bool,
    /// Augmenting searches the engine's blossom workspace ran during the
    /// per-piece identity pass.
    blossom_searches: u64,
    /// `O(n)` workspace resets during that pass — asserted 0.
    blossom_full_resets: u64,
}

/// The whole `BENCH_solver.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    p: f64,
    k: usize,
    per_piece_reps: usize,
    composed_reps: usize,
    pipeline_reps: usize,
    /// Acceptance bar: the end-to-end pipeline must be at least this much
    /// faster on the new path (the E13 fixed-seed regression).
    required_pipeline_speedup: f64,
    /// True when the reduced `E13_CI=1` workload was measured.
    ci_mode: bool,
    workloads: Vec<WorkloadBench>,
}

/// Times `run` with one warm-up followed by `reps` timed repetitions; asserts
/// every repetition returns the same answer and reports the median seconds.
fn median_secs<T: Eq + std::fmt::Debug>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let reference = run();
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let again = run();
        secs.push(start.elapsed().as_secs_f64());
        assert_eq!(again, reference, "timed runs must be deterministic");
    }
    (Summary::of(&secs).median, reference)
}

struct Reps {
    per_piece: usize,
    composed: usize,
    pipeline: usize,
}

fn bench_workload(n: usize, p: f64, reps: &Reps) -> WorkloadBench {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let g = gnp(n, p, &mut rng);

    // Overhead: the partition build both paths share (E12's territory).
    let (partition_overhead_secs, _) = median_secs(5, || {
        let mut r = ChaCha8Rng::seed_from_u64(SEED + 1);
        let part = PartitionedGraph::random(&g, K, &mut r).expect("k >= 1");
        part.piece_sizes().iter().sum::<usize>()
    });

    let mut r = ChaCha8Rng::seed_from_u64(SEED + 1);
    let partition = PartitionedGraph::random(&g, K, &mut r).expect("k >= 1");
    let views = partition.views();

    // Identity pass (untimed): the engine must reproduce the legacy per-piece
    // matchings bit for bit, with zero O(n) workspace resets.
    let legacy_pieces: Vec<Matching> = views.iter().map(legacy::maximum_matching).collect();
    let mut engine = MatchingEngine::new();
    let engine_pieces: Vec<Matching> = views.iter().map(|v| engine.solve(v)).collect();
    let per_piece_matchings_identical = legacy_pieces == engine_pieces;
    assert!(
        per_piece_matchings_identical,
        "the engine must return the exact matchings of the legacy solver"
    );
    let blossom_searches = engine.workspace().searches();
    let blossom_full_resets = engine.workspace().full_resets();
    assert_eq!(
        blossom_full_resets, 0,
        "epoch stamps must never fall back to an O(n) reset"
    );

    // Phase 1: all k per-piece solves.
    let (old_pp, old_sum) = median_secs(reps.per_piece, || {
        views
            .iter()
            .map(|v| legacy::maximum_matching(v).len())
            .sum::<usize>()
    });
    let (new_pp, new_sum) = median_secs(reps.per_piece, || {
        let mut e = MatchingEngine::new();
        views.iter().map(|v| e.solve(v).len()).sum::<usize>()
    });
    assert_eq!(old_sum, new_sum, "per-piece matching sizes must agree");

    // Phase 2: the coordinator's composed solve over fixed coresets.
    let coresets: Vec<Graph> = engine_pieces
        .iter()
        .map(|m| Graph::from_edges_unchecked(g.n(), m.edges().to_vec()))
        .collect();
    let (old_comp, old_size) = median_secs(reps.composed, || {
        let refs: Vec<&Graph> = coresets.iter().collect();
        let composed = Graph::union(&refs);
        legacy::maximum_matching(&composed).len()
    });
    let (new_comp, new_size) = median_secs(reps.composed, || {
        solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto).len()
    });
    assert_eq!(
        old_size, new_size,
        "warm-started composed solve must match the cold legacy size"
    );

    // Phase 3: the full pipeline, end to end.
    let dm = DistributedMatching::new(K);
    let (old_pipe, old_ans) = median_secs(reps.pipeline, || legacy::pipeline(&g, K, SEED + 2));
    let (new_pipe, new_ans) = median_secs(reps.pipeline, || {
        dm.run(&g, SEED + 2).expect("k >= 1").matching.len()
    });
    assert_eq!(
        old_ans, new_ans,
        "end-to-end matching sizes must be identical between the paths"
    );

    WorkloadBench {
        workload: format!("gnp({n}, {p})"),
        n,
        m: g.m(),
        k: K,
        partition_overhead_secs,
        per_piece: phase(old_pp, new_pp),
        composed: phase(old_comp, new_comp),
        pipeline: phase(old_pipe, new_pipe),
        matching_size: new_ans,
        per_piece_matchings_identical,
        blossom_searches,
        blossom_full_resets,
    }
}

fn main() {
    let ci_mode = std::env::var("E13_CI").is_ok();
    // CI runs a scaled-down instance of the same regime (per-piece expected
    // degree ~1.25); the full workload is the acceptance workload of the
    // solver overhaul.
    let (n, p, required_pipeline_speedup) = if ci_mode {
        (25_000, 8e-4, 1.5)
    } else {
        (100_000, 2e-4, 2.0)
    };
    let reps = Reps {
        per_piece: 3,
        composed: 3,
        pipeline: 2,
    };

    println!("# E13 — solver hot path: compacted, epoch-reset, warm-started engine\n");
    println!("Old path (frozen in this binary): per-search O(n) resets in blossom, per-call");
    println!("LCA allocations, colour-then-materialize Hopcroft-Karp dispatch, cold composed");
    println!("solve. New path: vertex compaction, epoch-stamped BlossomWorkspace, one shared");
    println!("CSR for colouring + solver, warm-started coordinator. k = {K}, RC_THREADS=1.\n");

    let w = bench_workload(n, p, &reps);

    let mut table = Table::new(
        format!("E13: solver hot path old vs new (k = {K} machines)"),
        &["workload", "m", "phase", "old secs", "new secs", "speedup"],
    );
    for (name, s) in [
        ("per-piece solves", &w.per_piece),
        ("composed solve", &w.composed),
        ("pipeline", &w.pipeline),
    ] {
        table.add_row(vec![
            w.workload.clone(),
            w.m.to_string(),
            name.to_string(),
            format!("{:.6}", s.old_median_secs),
            format!("{:.6}", s.new_median_secs),
            fmt_f(s.speedup),
        ]);
    }
    table.add_row(vec![
        w.workload.clone(),
        w.m.to_string(),
        "partition overhead".to_string(),
        format!("{:.6}", w.partition_overhead_secs),
        format!("{:.6}", w.partition_overhead_secs),
        fmt_f(1.0),
    ]);
    println!("{table}");

    println!(
        "blossom searches {} | full resets {} | per-piece matchings identical: {}",
        w.blossom_searches, w.blossom_full_resets, w.per_piece_matchings_identical
    );

    let report = BenchReport {
        seed: SEED,
        p,
        k: K,
        per_piece_reps: reps.per_piece,
        composed_reps: reps.composed,
        pipeline_reps: reps.pipeline,
        required_pipeline_speedup,
        ci_mode,
        workloads: vec![w],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_solver.json", &json).expect("BENCH_solver.json is writable");
    println!("Wrote BENCH_solver.json ({} bytes).", json.len());

    for w in &report.workloads {
        println!(
            "{}: pipeline speedup {:.2}x (bar: >= {:.1}x)",
            w.workload, w.pipeline.speedup, report.required_pipeline_speedup
        );
        assert!(
            w.pipeline.speedup >= report.required_pipeline_speedup,
            "{}: pipeline speedup {:.2}x fell below the {:.1}x acceptance bar",
            w.workload,
            w.pipeline.speedup,
            report.required_pipeline_speedup
        );
    }
    println!("Expected shape: per-piece and composed solves several times faster, end-to-end");
    println!("pipeline comfortably above the bar at RC_THREADS=1.");
}
