//! Experiment E9 — the weighted extension (Section 1.1): the Crouch–Stubbs
//! weight-class reduction turns the unweighted matching coreset into a
//! weighted one with an extra factor ≤ 2 loss and an O(log n) space factor.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_weighted`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::weighted::{
    compose_weighted_matching, WeightedCoresetOutput, WeightedMatchingCoreset,
};
use graph::partition::{partition_weighted, PartitionStrategy};
use graph::WeightedGraph;
use matching::weighted::greedy_weighted_matching;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 9;
const TRIALS: u64 = 3;

fn random_weighted(n: usize, m: usize, max_weight: f64, rng: &mut ChaCha8Rng) -> WeightedGraph {
    let mut triples = Vec::with_capacity(m);
    while triples.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        // Exponential-ish weights spread over several weight classes.
        let w = (1.0f64).max(max_weight.powf(rng.gen::<f64>()));
        triples.push((u, v, w));
    }
    WeightedGraph::from_triples(n, triples).expect("generated triples are valid")
}

fn main() {
    println!("# E9 — weighted matching coreset (Crouch–Stubbs extension)\n");
    println!("Paper claim: grouping edges by weight class extends the matching coreset to");
    println!("weighted graphs with a further factor-2 loss and an O(log n) size factor.");
    println!("Baseline: the classic greedy weighted matching run on the WHOLE input (a");
    println!("1/2-approximation of the optimum).\n");

    let n = 3000usize;
    let m = 30_000usize;
    let max_weight = 1000.0;

    let mut table = Table::new(
        format!("E9: weighted coreset vs whole-graph greedy (n={n}, m={m}, weights in [1, {max_weight}])"),
        &["k", "coreset weight (mean)", "greedy weight", "coreset / greedy", "coreset edges/machine", "weight classes"],
    );

    for k in [2usize, 4, 8, 16] {
        let mut weights = Vec::new();
        let mut edge_counts = Vec::new();
        let mut class_counts = Vec::new();
        let mut greedy_weight = 0.0;
        for t in 0..TRIALS {
            let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(EXP_ID, k as u64 * 10 + t));
            let g = random_weighted(n, m, max_weight, &mut rng);
            greedy_weight = greedy_weighted_matching(&g).total_weight;

            let pieces =
                partition_weighted(&g, k, PartitionStrategy::Random, &mut rng).expect("k >= 1");
            let builder = WeightedMatchingCoreset::default();
            let outputs: Vec<WeightedCoresetOutput> =
                pieces.iter().map(|p| builder.build(p)).collect();
            edge_counts.push(
                outputs
                    .iter()
                    .map(WeightedCoresetOutput::size)
                    .sum::<usize>() as f64
                    / k as f64,
            );
            class_counts.push(outputs.iter().map(|o| o.classes.len()).max().unwrap_or(0) as f64);
            let composed = compose_weighted_matching(n, &outputs);
            assert!(composed.is_valid_for(&g));
            weights.push(composed.total_weight);
        }
        let w = Summary::of(&weights);
        table.add_row(vec![
            k.to_string(),
            fmt_f(w.mean),
            fmt_f(greedy_weight),
            fmt_f(w.mean / greedy_weight),
            fmt_f(Summary::of(&edge_counts).mean),
            fmt_f(Summary::of(&class_counts).mean),
        ]);
    }
    println!("{table}");
    println!("Expected shape: the coreset/greedy column stays above ~0.5 for every k");
    println!("(the coreset loses at most a small constant factor against the baseline),");
    println!("and the number of weight classes is ~log2(max weight) ≈ 10.");
}
