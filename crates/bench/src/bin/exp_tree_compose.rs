//! E16 — hierarchical tree composition + out-of-core edge arena: the
//! protocol on a 10⁷-edge graph without ever holding the edge set in memory.
//!
//! The flat coordinator path materializes the whole partitioned edge set
//! (O(m) resident edges) before any machine runs. This experiment runs the
//! same protocol **end-to-end from an on-disk arena file**
//! (`graph::arena_file`): machine pieces are streamed one segment at a time
//! through a `SegmentLoader`, leaf coresets are folded through the
//! hierarchical composition tree (`coresets::tree`, fan-in 2 over `log k`
//! levels, each merge re-coreseting its union), and only the final
//! `≤ fan_in` roots are solved flat. Peak resident edges are tracked by
//! `graph::metrics` and **asserted in-binary**:
//!
//! * the frozen flat path (arena `load_all` + flat composition) peaks at
//!   `≥ m` resident edges — it holds the whole arena;
//! * the out-of-core tree path peaks at
//!   `≤ 2·(m/k + fan_in·(n/2)·(levels+1))` — one segment plus the live
//!   coreset layers and merge scratch — and strictly below the flat peak;
//! * the tree answer is at least the best single leaf coreset (each merge
//!   solves a union containing every child matching);
//! * the arena-streamed tree answer is **bit-identical** to the in-memory
//!   tree protocol at 1/2/4 worker threads and under two forced
//!   scheduler-fuzz seeds — the file format and the bounded-memory schedule
//!   are invisible in the output.
//!
//! The flat/tree approximation ratio is recorded honestly (re-coreseting
//! loses a constant factor per level in theory; measured loss is the point
//! of the experiment), not asserted.
//!
//! Emits `BENCH_compose.json`. Regenerate with
//! `cargo run --release -p bench --bin exp_tree_compose`
//! (`E16_CI=1` selects the reduced CI workload).

use bench::table::fmt_f;
use bench::Table;
use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::streams::machine_rng;
use coresets::{solve_composed_matching, CoresetParams, TreePlan};
use distsim::{ArenaProtocol, CoordinatorProtocol};
use graph::gen::rmat::rmat_graph500;
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{metrics, write_arena_file, ArenaFile, Graph, SegmentLoader};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::sched_fuzz::with_fuzz;
use rayon::ThreadPoolBuilder;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 2017;
const FAN_IN: usize = 2;
/// Worker-thread sweep for the in-memory bit-identity cross-check.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
/// Forced scheduler-fuzz seeds for the adversarial-schedule cross-check.
const FUZZ_SEEDS: [u64; 2] = [21, 89];

/// The whole `BENCH_compose.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    ci_mode: bool,
    seed: u64,
    rmat_scale: u32,
    rmat_edge_factor: usize,
    n: usize,
    m: usize,
    k: usize,
    fan_in: usize,
    tree_levels: usize,
    arena_file_bytes: u64,
    /// Peak resident edges of the frozen flat path (load_all + flat solve).
    peak_resident_flat: u64,
    /// Peak resident edges of the out-of-core tree path.
    peak_resident_tree: u64,
    /// The asserted ceiling: `2·(m/k + fan_in·(n/2)·(levels+1))`.
    tree_peak_bound: u64,
    /// `peak_flat / peak_tree` — how much resident memory the tree saves.
    peak_reduction_factor: f64,
    flat_matching_size: usize,
    tree_matching_size: usize,
    /// `flat / tree` matching size — the (honest) cost of re-coreseting.
    flat_over_tree_ratio: f64,
    best_leaf_coreset_size: usize,
    flat_secs: f64,
    tree_secs: f64,
    /// Thread counts whose in-memory tree run matched the arena run bit-for-bit.
    bit_identical_thread_counts: Vec<usize>,
    /// Fuzz seeds whose forced-adversarial schedule matched bit-for-bit.
    bit_identical_fuzz_seeds: Vec<u64>,
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(f)
}

/// The frozen pre-arena coordinator path: materialize the **entire** arena
/// (`load_all`), build every leaf coreset with the whole edge set resident,
/// and solve the flat composition. Charges coresets and the final union
/// scratch to the resident-edge meter, exactly like the out-of-core runner,
/// so the two peaks are comparable. Returns the answer and the leaf coresets.
fn flat_baseline(
    arena: &ArenaFile,
    builder: &MaximumMatchingCoreset,
    params: &CoresetParams,
) -> (Matching, Vec<Graph>) {
    let mut loader = SegmentLoader::new(arena).expect("arena opens for flat baseline");
    let coresets: Vec<Graph> = {
        let views = loader.load_all().expect("arena reads for flat baseline");
        views
            .iter()
            .enumerate()
            .map(|(i, piece)| {
                let c = builder.build(*piece, params, i, &mut machine_rng(SEED, i));
                metrics::record_resident_edges_acquired(c.m());
                c
            })
            .collect()
    };
    loader.release();
    let coreset_edges: usize = coresets.iter().map(Graph::m).sum();
    // The flat solve concatenates every coreset into one compaction pass.
    metrics::record_resident_edges_acquired(coreset_edges);
    let answer = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
    metrics::record_resident_edges_released(coreset_edges);
    (answer, coresets)
}

fn main() {
    let ci_mode = std::env::var("E16_CI").is_ok();
    // Full workload: 2^18 vertices, ~10^7 distinct R-MAT edges, 64 machines.
    // CI workload: 2^14 vertices, ~8·10^5 edges, 16 machines — same asserts.
    let (scale, edge_factor, k) = if ci_mode {
        (14u32, 50usize, 16usize)
    } else {
        (18u32, 40usize, 64usize)
    };

    println!("# E16: hierarchical tree composition + out-of-core edge arena\n");
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let gen_start = Instant::now();
    let g = rmat_graph500(scale, edge_factor, &mut rng);
    let (n, m) = (g.n(), g.m());
    println!(
        "Workload: R-MAT scale {scale}, edge factor {edge_factor}: n = {n}, m = {m} \
         ({:.1}s to generate); k = {k} machines, fan-in {FAN_IN}.",
        gen_start.elapsed().as_secs_f64()
    );

    // The partition is drawn exactly as `CoordinatorProtocol::run_matching`
    // draws it from the same seed, so the arena encodes the identical pieces
    // the in-memory runs below will compute on.
    let mut part_rng = ChaCha8Rng::seed_from_u64(SEED);
    let partition = PartitionedGraph::new(&g, k, PartitionStrategy::Random, &mut part_rng)
        .expect("k >= 1 and the graph is non-empty");
    let arena_path = std::env::temp_dir().join(format!("rc_e16_arena_{}.bin", std::process::id()));
    write_arena_file(&arena_path, &partition).expect("arena file is writable");
    let arena = ArenaFile::open(&arena_path).expect("freshly written arena reopens");
    let arena_file_bytes = std::fs::metadata(&arena_path)
        .expect("arena file has metadata")
        .len();
    drop(partition);
    println!(
        "Arena: {} bytes on disk at {} ({} segments).\n",
        arena_file_bytes,
        arena_path.display(),
        arena.k()
    );

    let builder = MaximumMatchingCoreset::new();
    let params = CoresetParams::new(n, k);
    let plan = TreePlan::new(k, FAN_IN);

    // --- Frozen flat path: whole arena resident, flat composition. ---
    metrics::reset_peak_resident_edges();
    let flat_start = Instant::now();
    let (flat_answer, leaf_coresets) = flat_baseline(&arena, &builder, &params);
    let flat_secs = flat_start.elapsed().as_secs_f64();
    let peak_resident_flat = metrics::peak_resident_edges();
    let best_leaf_coreset_size = leaf_coresets.iter().map(Graph::m).max().unwrap_or(0);
    drop(leaf_coresets);
    assert!(
        peak_resident_flat >= m as u64,
        "the flat path must hold the whole arena: peak {peak_resident_flat} < m = {m}"
    );

    // --- Out-of-core tree path: one segment at a time, log-k merging. ---
    metrics::reset_peak_resident_edges();
    let tree_start = Instant::now();
    let ooc = ArenaProtocol::tree(FAN_IN)
        .run_matching(&arena, &builder, SEED)
        .expect("arena protocol runs");
    let tree_secs = tree_start.elapsed().as_secs_f64();
    let peak_resident_tree = metrics::peak_resident_edges();

    let tree_peak_bound = (2 * (m / k + FAN_IN * (n / 2) * (plan.levels() + 1))) as u64;
    assert!(
        peak_resident_tree <= tree_peak_bound,
        "out-of-core tree peak {peak_resident_tree} exceeds the bound {tree_peak_bound}"
    );
    assert!(
        peak_resident_tree < peak_resident_flat,
        "the tree path must peak strictly below the flat path \
         ({peak_resident_tree} vs {peak_resident_flat})"
    );
    assert!(
        ooc.answer.len() >= best_leaf_coreset_size,
        "every merge solves a union containing each child matching, so the tree \
         answer ({}) cannot drop below the best leaf coreset ({best_leaf_coreset_size})",
        ooc.answer.len()
    );

    // --- Bit-identity: in-memory tree protocol across thread counts and
    //     forced-adversarial schedules must equal the arena-streamed answer. ---
    let protocol = CoordinatorProtocol::tree(k, FAN_IN);
    let mut bit_identical_thread_counts = Vec::new();
    for &threads in &THREAD_SWEEP {
        let run = with_threads(threads, || {
            protocol
                .run_matching(&g, &builder, SEED)
                .expect("in-memory tree protocol runs")
        });
        assert_eq!(
            run.answer.edges(),
            ooc.answer.edges(),
            "in-memory tree at {threads} thread(s) diverged from the arena run"
        );
        bit_identical_thread_counts.push(threads);
    }
    let mut bit_identical_fuzz_seeds = Vec::new();
    for &fuzz in &FUZZ_SEEDS {
        let run = with_fuzz(Some(fuzz), || {
            with_threads(4, || {
                protocol
                    .run_matching(&g, &builder, SEED)
                    .expect("fuzzed tree protocol runs")
            })
        });
        assert_eq!(
            run.answer.edges(),
            ooc.answer.edges(),
            "fuzz seed {fuzz} diverged from the arena run"
        );
        bit_identical_fuzz_seeds.push(fuzz);
    }
    println!(
        "Bit-identity: arena answer reproduced at {:?} threads and fuzz seeds {:?}.\n",
        bit_identical_thread_counts, bit_identical_fuzz_seeds
    );

    let peak_reduction_factor = peak_resident_flat as f64 / peak_resident_tree.max(1) as f64;
    let flat_over_tree_ratio = flat_answer.len() as f64 / ooc.answer.len().max(1) as f64;

    let mut table = Table::new(
        format!("Flat vs out-of-core tree composition (k = {k}, fan-in {FAN_IN})"),
        &["path", "peak resident edges", "matching", "secs"],
    );
    table.add_row(vec![
        "flat (whole arena)".to_string(),
        peak_resident_flat.to_string(),
        flat_answer.len().to_string(),
        format!("{flat_secs:.2}"),
    ]);
    table.add_row(vec![
        format!("tree (streamed, {} levels)", plan.levels()),
        peak_resident_tree.to_string(),
        ooc.answer.len().to_string(),
        format!("{tree_secs:.2}"),
    ]);
    println!("{table}");
    println!(
        "Peak reduction {}x (bound was {tree_peak_bound}); flat/tree matching ratio {} \
         (recorded, not asserted).",
        fmt_f(peak_reduction_factor),
        fmt_f(flat_over_tree_ratio)
    );

    let report = BenchReport {
        ci_mode,
        seed: SEED,
        rmat_scale: scale,
        rmat_edge_factor: edge_factor,
        n,
        m,
        k,
        fan_in: FAN_IN,
        tree_levels: plan.levels(),
        arena_file_bytes,
        peak_resident_flat,
        peak_resident_tree,
        tree_peak_bound,
        peak_reduction_factor,
        flat_matching_size: flat_answer.len(),
        tree_matching_size: ooc.answer.len(),
        flat_over_tree_ratio,
        best_leaf_coreset_size,
        flat_secs,
        tree_secs,
        bit_identical_thread_counts,
        bit_identical_fuzz_seeds,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_compose.json", &json).expect("BENCH_compose.json is writable");
    println!("Wrote BENCH_compose.json ({} bytes).", json.len());

    std::fs::remove_file(&arena_path).expect("temp arena file removes");
    println!(
        "Removed temp arena {}. Expected shape: tree peak ~levels·n versus flat peak ~m;",
        arena_path.display()
    );
    println!("matching ratio near 1.0 — re-coreseting each union keeps a maximum matching.");
}
