//! E18 — dynamic edge-churn serving: dirty-piece re-coresets vs the frozen
//! naive full-repartition-re-solve baseline.
//!
//! A [`distsim::GraphService`] absorbs batches of edge inserts/deletes
//! through a churn-stable hash-partition overlay, keeps instant incremental
//! answers (maximal matching + matched-endpoint cover) between rounds, and
//! after each batch rebuilds coresets **only for machines whose piece
//! fingerprint changed** before recomposing the protocol answers from its
//! fingerprint-keyed caches. The baseline, frozen in `distsim` as
//! [`distsim::naive_full_round`], does what a batch-only pipeline must do on
//! every batch: re-partition the whole current graph from scratch and
//! rebuild all `k` machines' coresets.
//!
//! Correctness is asserted before any number is recorded:
//!
//! * after **every** batch, the service's composed matching and cover are
//!   bit-identical to the naive from-scratch round on the current graph
//!   (the cache-reuse soundness claim, end to end);
//! * the incremental maximal matching is at least half the composed answer;
//! * the whole run materializes **zero** piece edge buffers
//!   ([`graph::metrics::MetricsScope`] — both paths compute on zero-copy
//!   views);
//! * the complete answer stream is bit-identical at 1 / 4 worker threads and
//!   under two forced scheduler-fuzz seeds.
//!
//! The headline metric is sustained **updates/sec** (batch wall-clock,
//! answers recomposed every batch). The ≥ [`SPEEDUP_BAR`]× service-vs-naive
//! bar is asserted only when the dirty fraction is genuinely small
//! (`ops_per_batch ≪ k`, the full workload); the reduced CI workload records
//! its ratio honestly without asserting (`bar_asserted = false`).
//!
//! Emits `BENCH_dynamic.json`. Regenerate with
//! `cargo run --release -p bench --bin exp_dynamic_churn`
//! (`E18_CI=1` selects the reduced CI workload).

use bench::table::fmt_f;
use bench::Table;
use distsim::{naive_full_round, GraphService, GraphServiceConfig};
use graph::gen::er::gnp;
use graph::metrics::MetricsScope;
use graph::{fingerprint_edges, ChurnOp, Edge, Graph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::sched_fuzz::with_fuzz;
use rayon::ThreadPoolBuilder;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 2017;
const EPS: f64 = 0.5;
const SPEEDUP_BAR: f64 = 5.0;
const FUZZ_SEEDS: [u64; 2] = [21, 89];

/// One batch of churn: service and naive timings plus the asserted answers.
#[derive(Debug, Serialize)]
struct BatchSample {
    batch: usize,
    ops: usize,
    /// Ops that changed the edge set.
    applied: usize,
    machines_rebuilt: usize,
    machines_cached: usize,
    compacted: bool,
    /// Service wall-clock for the batch: overlay updates + incremental
    /// repairs + dirty-only rebuilds + recomposition.
    service_secs: f64,
    /// Naive wall-clock for the same state: full re-partition + all-`k`
    /// coreset rebuilds + composition (current graph handed over for free).
    naive_secs: f64,
    /// Composed answers (asserted equal between service and naive).
    matching_size: usize,
    cover_size: usize,
    /// Incremental (instant) answers.
    approx_matching_size: usize,
    approx_cover_size: usize,
}

/// One determinism probe: the scenario's complete answer-stream fingerprint
/// under a pinned thread count / scheduler-fuzz seed.
#[derive(Debug, Serialize)]
struct DeterminismProbe {
    threads: usize,
    fuzz_seed: Option<u64>,
    answer_fingerprint: String,
}

/// The whole `BENCH_dynamic.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    host_available_parallelism: usize,
    ci_mode: bool,
    seed: u64,
    eps: f64,
    n: usize,
    k: usize,
    initial_m: usize,
    final_m: usize,
    batches: usize,
    ops_per_batch: usize,
    total_ops: usize,
    total_applied: usize,
    service_total_secs: f64,
    naive_total_secs: f64,
    service_updates_per_sec: f64,
    naive_updates_per_sec: f64,
    /// `naive / service` wall-clock — >1 means the dirty-piece path wins.
    speedup: f64,
    speedup_bar: f64,
    /// Whether the ≥ [`SPEEDUP_BAR`] assertion was armed (full workload,
    /// `ops_per_batch ≪ k`); the CI workload records its ratio honestly.
    bar_asserted: bool,
    /// Cumulative (hits, misses) of the two coreset caches over the run.
    matching_cache_hits: u64,
    matching_cache_misses: u64,
    vc_cache_hits: u64,
    vc_cache_misses: u64,
    /// Piece edge buffers materialized across the whole run (asserted 0).
    piece_edges_materialized: u64,
    determinism: Vec<DeterminismProbe>,
    batch_samples: Vec<BatchSample>,
}

/// The deterministic churn stream for one batch: half fresh inserts, half
/// deletes of currently present edges (so churn keeps biting), derived from
/// `(SEED, batch)` only.
fn batch_ops(current: &Graph, n: usize, count: usize, batch: usize) -> Vec<ChurnOp> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ (0xE18 + batch as u64));
    let edges = current.edges();
    let mut ops = Vec::with_capacity(count);
    while ops.len() < count {
        if !edges.is_empty() && rng.gen_bool(0.5) {
            ops.push(ChurnOp::Delete(edges[rng.gen_range(0..edges.len())]));
        } else {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            ops.push(ChurnOp::Insert(Edge::new(u, v)));
        }
    }
    ops
}

/// Folds one composed answer pair plus the incremental sizes into a running
/// fingerprint (order-sensitive, like `graph::fingerprint_edges`).
fn fold_answers(
    acc: u64,
    matching: &matching::Matching,
    cover: &vertexcover::VertexCover,
    approx_matching: usize,
    approx_cover: usize,
) -> u64 {
    let mut h = acc ^ fingerprint_edges(matching.edges());
    for v in cover.sorted_vertices() {
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(v as u64);
    }
    h.wrapping_mul(31)
        .wrapping_add(approx_matching as u64)
        .wrapping_mul(31)
        .wrapping_add(approx_cover as u64)
}

/// Runs the full churn scenario (no naive rounds, no timing) and returns the
/// fingerprint of its complete answer stream — the determinism probe body.
fn scenario_fingerprint(
    g: &Graph,
    n: usize,
    k: usize,
    batches: usize,
    ops_per_batch: usize,
) -> u64 {
    let mut svc = GraphService::new(
        g,
        GraphServiceConfig {
            k,
            seed: SEED,
            eps: EPS,
        },
    )
    .expect("service");
    let mut acc = 0u64;
    for batch in 0..batches {
        let ops = batch_ops(&svc.current_graph(), n, ops_per_batch, batch);
        let outcome = svc.apply_batch(&ops).expect("batch");
        acc = fold_answers(
            acc,
            svc.matching(),
            svc.cover(),
            outcome.approx_matching_size,
            outcome.approx_cover_size,
        );
    }
    acc
}

fn main() {
    let ci_mode = std::env::var("E18_CI").is_ok();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The dense regime is where coresets actually compress — each machine's
    // piece (m/k edges) shrinks to a <= n/2-edge coreset, so the naive
    // path's full rebuild + repartition dominates the shared composed solve
    // and the dirty-piece cache pays off. Full: m ~ 800k edges vs a
    // <= 128k-edge coreset union, 4-op batches over k = 64 machines. CI:
    // the same regime shrunk.
    let (n, k, batches, ops_per_batch, avg_deg) = if ci_mode {
        (1_500usize, 32usize, 5usize, 4usize, 150.0)
    } else {
        (4_000usize, 64usize, 10usize, 4usize, 400.0)
    };

    println!(
        "# E18: dynamic edge-churn serving (dirty-piece re-coresets vs naive full re-solve)\n"
    );
    println!(
        "Host cores: {cores}; n = {n}, k = {k} machines, {batches} batches x {ops_per_batch} ops;"
    );
    println!("per-batch answers asserted equal to a from-scratch batch round first.\n");

    let g = gnp(n, avg_deg / n as f64, &mut ChaCha8Rng::seed_from_u64(SEED));
    let initial_m = g.m();

    let scope = MetricsScope::enter();
    let mut svc = GraphService::new(
        &g,
        GraphServiceConfig {
            k,
            seed: SEED,
            eps: EPS,
        },
    )
    .expect("service construction");
    let mut acc = 0u64;
    let mut samples: Vec<BatchSample> = Vec::with_capacity(batches);
    let mut service_total_secs = 0.0f64;
    let mut naive_total_secs = 0.0f64;
    let mut total_applied = 0usize;
    for batch in 0..batches {
        let ops = batch_ops(&svc.current_graph(), n, ops_per_batch, batch);

        let t = Instant::now();
        let outcome = svc.apply_batch(&ops).expect("service batch");
        let service_secs = t.elapsed().as_secs_f64();
        service_total_secs += service_secs;
        total_applied += outcome.applied;

        // The naive baseline gets the current graph for free and still must
        // re-partition and rebuild everything.
        let current = svc.current_graph();
        let t = Instant::now();
        let (naive_matching, naive_cover) =
            naive_full_round(&current, k, SEED).expect("naive round");
        let naive_secs = t.elapsed().as_secs_f64();
        naive_total_secs += naive_secs;

        // The headline correctness claims, per batch.
        assert_eq!(
            svc.matching(),
            &naive_matching,
            "batch {batch}: cached composition diverged from the from-scratch matching"
        );
        assert_eq!(
            svc.cover(),
            &naive_cover,
            "batch {batch}: cached composition diverged from the from-scratch cover"
        );
        assert!(
            2 * outcome.approx_matching_size >= outcome.matching_size,
            "batch {batch}: maximal incremental matching below half the composed answer"
        );
        assert!(
            svc.incremental().cover().covers(&current),
            "batch {batch}: incremental cover infeasible"
        );

        acc = fold_answers(
            acc,
            svc.matching(),
            svc.cover(),
            outcome.approx_matching_size,
            outcome.approx_cover_size,
        );
        samples.push(BatchSample {
            batch,
            ops: ops.len(),
            applied: outcome.applied,
            machines_rebuilt: outcome.machines_rebuilt,
            machines_cached: outcome.machines_cached,
            compacted: outcome.compacted,
            service_secs,
            naive_secs,
            matching_size: outcome.matching_size,
            cover_size: outcome.cover_size,
            approx_matching_size: outcome.approx_matching_size,
            approx_cover_size: outcome.approx_cover_size,
        });
    }
    let final_m = svc.m();
    let piece_edges_materialized = scope.piece_edges_materialized();
    assert_eq!(
        piece_edges_materialized, 0,
        "both paths must compute on zero-copy piece views"
    );

    let mut table = Table::new(
        format!("Per-batch wall-clock: dirty-piece service vs naive full round (k = {k})"),
        &[
            "batch",
            "applied",
            "rebuilt",
            "cached",
            "service s",
            "naive s",
            "speedup",
            "matching",
            "cover",
        ],
    );
    for s in &samples {
        table.add_row(vec![
            s.batch.to_string(),
            s.applied.to_string(),
            s.machines_rebuilt.to_string(),
            s.machines_cached.to_string(),
            format!("{:.5}", s.service_secs),
            format!("{:.5}", s.naive_secs),
            fmt_f(s.naive_secs / s.service_secs.max(f64::MIN_POSITIVE)),
            s.matching_size.to_string(),
            s.cover_size.to_string(),
        ]);
    }
    println!("{table}");

    // Determinism probes: the complete answer stream is bit-identical at
    // 1 / 4 worker threads and under forced scheduler-fuzz seeds.
    let probe = || scenario_fingerprint(&g, n, k, batches, ops_per_batch);
    let mut determinism = Vec::new();
    let reference = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(probe);
    assert_eq!(reference, acc, "probe replay diverged from the timed run");
    determinism.push(DeterminismProbe {
        threads: 1,
        fuzz_seed: None,
        answer_fingerprint: format!("{reference:#018x}"),
    });
    for (threads, fuzz) in [
        (4usize, None),
        (4, Some(FUZZ_SEEDS[0])),
        (4, Some(FUZZ_SEEDS[1])),
    ] {
        let run = || {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(probe)
        };
        let got = match fuzz {
            Some(f) => with_fuzz(Some(f), run),
            None => run(),
        };
        assert_eq!(
            got, reference,
            "answer stream diverged at {threads} threads, fuzz {fuzz:?}"
        );
        determinism.push(DeterminismProbe {
            threads,
            fuzz_seed: fuzz,
            answer_fingerprint: format!("{got:#018x}"),
        });
    }
    println!(
        "Determinism: {} probes bit-identical (1t, 4t, fuzz {FUZZ_SEEDS:?}).\n",
        1 + 3
    );

    let service_updates_per_sec = total_applied as f64 / service_total_secs.max(f64::MIN_POSITIVE);
    let naive_updates_per_sec = total_applied as f64 / naive_total_secs.max(f64::MIN_POSITIVE);
    let speedup = naive_total_secs / service_total_secs.max(f64::MIN_POSITIVE);
    // The bar measures the dirty-fraction advantage: armed on the full
    // workload where ops_per_batch << k guarantees most machines are clean.
    // The reduced CI workload (and any future shrunken run) records honestly.
    let bar_asserted = !ci_mode;
    if bar_asserted {
        assert!(
            speedup >= SPEEDUP_BAR,
            "dirty-piece serving must sustain >= {SPEEDUP_BAR}x the naive full-round \
             update rate; measured {speedup:.2}x"
        );
        println!(
            "BAR PASSED: {speedup:.2}x naive wall-clock ({:.0} vs {:.0} updates/sec, >= {SPEEDUP_BAR}x).",
            service_updates_per_sec, naive_updates_per_sec
        );
    } else {
        println!(
            "CI workload: speedup bar not asserted; measured {speedup:.2}x recorded honestly."
        );
    }

    let (mh, mm) = svc.matching_cache_stats();
    let (vh, vm) = svc.vc_cache_stats();
    let report = BenchReport {
        host_available_parallelism: cores,
        ci_mode,
        seed: SEED,
        eps: EPS,
        n,
        k,
        initial_m,
        final_m,
        batches,
        ops_per_batch,
        total_ops: batches * ops_per_batch,
        total_applied,
        service_total_secs,
        naive_total_secs,
        service_updates_per_sec,
        naive_updates_per_sec,
        speedup,
        speedup_bar: SPEEDUP_BAR,
        bar_asserted,
        matching_cache_hits: mh,
        matching_cache_misses: mm,
        vc_cache_hits: vh,
        vc_cache_misses: vm,
        piece_edges_materialized,
        determinism,
        batch_samples: samples,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_dynamic.json", &json).expect("BENCH_dynamic.json is writable");
    println!("Wrote BENCH_dynamic.json ({} bytes).", json.len());
    println!("Expected shape: >= {SPEEDUP_BAR}x on the full workload (<= {ops_per_batch} of {k}");
    println!("machines rebuilt per batch vs all {k}); answers identical to from-scratch rounds.");
}
