//! Experiment E1 — Theorem 1: the maximum-matching coreset is an
//! O(1)-approximation under random partitioning, across workloads, graph
//! sizes and machine counts.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_matching_coreset`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::DistributedMatching;
use graph::gen::bipartite::{planted_matching_bipartite, random_bipartite};
use graph::gen::er::gnp;
use graph::gen::powerlaw::chung_lu;
use graph::Graph;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 1;
const TRIALS: u64 = 3;

fn workloads(seed: u64) -> Vec<(String, Graph, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();

    let er = gnp(4000, 0.002, &mut rng);
    let er_opt = maximum_matching(&er).len();
    out.push(("erdos-renyi(n=4000, p=0.002)".to_string(), er, er_opt));

    let bip = random_bipartite(3000, 3000, 0.0015, &mut rng).to_graph();
    let bip_opt = maximum_matching(&bip).len();
    out.push(("bipartite(n=3000+3000, p=0.0015)".to_string(), bip, bip_opt));

    let (planted, matching) = planted_matching_bipartite(3000, 0.001, &mut rng);
    let planted_n = matching.len();
    out.push((
        "planted-matching(n=3000+3000)".to_string(),
        planted.to_graph(),
        planted_n,
    ));

    let pl = chung_lu(4000, 2.5, 6.0, &mut rng);
    let pl_opt = maximum_matching(&pl).len();
    out.push(("chung-lu(n=4000, gamma=2.5)".to_string(), pl, pl_opt));

    out
}

fn main() {
    println!("# E1 — maximum-matching coreset approximation (Theorem 1)\n");
    println!("Paper claim: composing any maximum matchings of the randomly partitioned");
    println!("pieces gives an O(1)-approximation (proof bound 9; expect ~1-2 in practice),");
    println!("independent of k and of the workload.\n");

    let mut table = Table::new(
        "E1: approximation ratio of the maximum-matching coreset",
        &[
            "workload",
            "k",
            "opt",
            "coreset matching (mean)",
            "ratio (mean)",
            "ratio (max)",
            "coreset edges/machine",
        ],
    );

    for k in [2usize, 4, 8, 16, 32] {
        for (name, g, opt) in workloads(trial_seed(EXP_ID, 0)) {
            let mut ratios = Vec::new();
            let mut sizes = Vec::new();
            let mut coreset_edges = Vec::new();
            for t in 0..TRIALS {
                let result = DistributedMatching::new(k)
                    .run(&g, trial_seed(EXP_ID, 100 + t))
                    .expect("k >= 1");
                assert!(result.matching.is_valid_for(&g));
                ratios.push(opt as f64 / result.matching.len().max(1) as f64);
                sizes.push(result.matching.len() as f64);
                coreset_edges.push(result.coreset_sizes.iter().sum::<usize>() as f64 / k as f64);
            }
            let ratio = Summary::of(&ratios);
            let size = Summary::of(&sizes);
            let edges = Summary::of(&coreset_edges);
            table.add_row(vec![
                name,
                k.to_string(),
                opt.to_string(),
                fmt_f(size.mean),
                fmt_f(ratio.mean),
                fmt_f(ratio.max),
                fmt_f(edges.mean),
            ]);
        }
    }
    println!("{table}");
}
