//! E15 — skewed-partition scheduler scaling: work stealing vs the frozen
//! fixed-chunk dispatcher.
//!
//! The paper's protocols fan per-machine work out to worker threads. Under a
//! *random* edge partition the pieces are balanced and any dispatcher looks
//! fine; under a **power-law partition** — here a zipf(s = 1.7) split across
//! `k = 32` machines where machine 0 holds ~50% of all edges — the old
//! one-contiguous-chunk-per-worker split pins nearly all of the work on one
//! worker (at 4 threads its first chunk carries ~86% of the edges), while the
//! work-stealing chunk queue lets one worker chew on the dense machine as its
//! siblings drain the tail.
//!
//! This binary times the **same per-piece jobs** (a linear-time 2-approximate
//! vertex cover per machine, plus a greedy maximal matching per machine as a
//! second family) under three dispatchers:
//!
//! * sequential (the reference answers),
//! * the pre-PR fixed-chunk dispatcher, **frozen in-binary** below
//!   (`fixed_chunk_map`: `threads = min(threads, pieces)`, one contiguous
//!   `div_ceil`-sized chunk per worker),
//! * the library's work-stealing scheduler (`par_iter` on the vendored rayon
//!   backend).
//!
//! Per-piece answers are asserted identical across all three before any
//! number is recorded. On hosts with ≥ 4 cores the binary **asserts** that
//! work stealing beats the fixed-chunk baseline by ≥ 1.5× at 4 threads on
//! the vertex-cover family; on smaller hosts (the 1-core dev container) the
//! ratio is ~1.0 and is recorded honestly without asserting the bar.
//!
//! Emits `BENCH_sched.json`. Regenerate with
//! `cargo run --release -p bench --bin exp_sched_scaling`
//! (`E15_CI=1` selects the reduced CI workload).

use bench::table::fmt_f;
use bench::{Summary, Table};
use graph::gen::er::gnp;
use graph::{Edge, GraphView};
use matching::greedy::maximal_matching;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde::Serialize;
use std::time::Instant;
use vertexcover::approx::two_approx_cover;

const SEED: u64 = 2017;
const K: usize = 32;
const ZIPF_S: f64 = 1.7;
const SPEEDUP_BAR: f64 = 1.5;
const BAR_THREADS: usize = 4;

/// One (job, thread-count) comparison of the two dispatchers.
#[derive(Debug, Serialize)]
struct SchedSample {
    threads: usize,
    /// Median wall-clock seconds per fan-out under the frozen fixed-chunk
    /// dispatcher.
    fixed_median_secs: f64,
    /// Median wall-clock seconds per fan-out under the work-stealing queue.
    ws_median_secs: f64,
    /// `fixed / ws` — >1 means work stealing is faster.
    ws_speedup_vs_fixed: f64,
}

/// All measurements of one per-piece job family.
#[derive(Debug, Serialize)]
struct JobBench {
    job: String,
    samples: Vec<SchedSample>,
}

/// The whole `BENCH_sched.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    host_available_parallelism: usize,
    ci_mode: bool,
    seed: u64,
    k: usize,
    zipf_s: f64,
    n: usize,
    m: usize,
    /// Fraction of all edges held by the heaviest machine (~0.5 by design).
    heaviest_piece_share: f64,
    /// Fraction of all edges the fixed dispatcher's first worker owns at
    /// [`BAR_THREADS`] threads — the serialization the queue removes.
    fixed_first_chunk_share: f64,
    thread_counts: Vec<usize>,
    reps_per_sample: usize,
    speedup_bar: f64,
    /// Whether the ≥ [`SPEEDUP_BAR`] assertion was armed (host has ≥ 4
    /// cores) — single-core hosts record their ~1.0 honestly instead.
    bar_asserted: bool,
    jobs: Vec<JobBench>,
}

/// Cuts `edges` into `k` zipf(s)-sized contiguous slices, heaviest first,
/// and returns one `GraphView` per machine. With `s = 1.7` and `k = 32` the
/// first machine holds ~50% of all edges.
fn zipf_pieces(n: usize, edges: &[Edge], k: usize, s: f64) -> Vec<GraphView<'_>> {
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total_w: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total_w) * edges.len() as f64).floor() as usize)
        .collect();
    // Distribute flooring remainders onto the tail machines.
    let mut assigned: usize = counts.iter().sum();
    let mut i = k - 1;
    while assigned < edges.len() {
        counts[i] += 1;
        assigned += 1;
        i = if i == 0 { k - 1 } else { i - 1 };
    }
    let mut pieces = Vec::with_capacity(k);
    let mut start = 0;
    for &c in &counts {
        pieces.push(GraphView::new(n, &edges[start..start + c]));
        start += c;
    }
    assert_eq!(start, edges.len(), "zipf slices tile the edge set");
    pieces
}

/// The pre-PR dispatcher, frozen for comparison: `min(threads, pieces)`
/// scoped workers, one contiguous `div_ceil`-sized chunk each, outputs
/// concatenated in chunk order. This is exactly the split `vendor/rayon`
/// used before the work-stealing rewrite.
fn fixed_chunk_map<R: Send + Sync>(
    pieces: &[GraphView<'_>],
    threads: usize,
    f: &(dyn Fn(&GraphView<'_>) -> R + Sync),
) -> Vec<R> {
    let threads = threads.min(pieces.len());
    if threads <= 1 {
        return pieces.iter().map(f).collect();
    }
    let chunk_size = pieces.len().div_ceil(threads);
    let mut out = Vec::with_capacity(pieces.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("fixed-chunk worker"));
        }
    });
    out
}

/// Medians one dispatcher: one warm-up fan-out, then `reps` timed fan-outs,
/// asserting every run reproduces `expected`.
fn time_dispatch(reps: usize, expected: &[usize], run: &dyn Fn() -> Vec<usize>) -> f64 {
    let warmup = run();
    assert_eq!(warmup, expected, "dispatcher changed a per-piece answer");
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let again = run();
        secs.push(start.elapsed().as_secs_f64());
        assert_eq!(again, expected, "dispatcher changed a per-piece answer");
    }
    Summary::of(&secs).median
}

fn bench_job(
    job: &str,
    pieces: &[GraphView<'_>],
    thread_counts: &[usize],
    reps: usize,
    f: &(dyn Fn(&GraphView<'_>) -> usize + Sync),
) -> JobBench {
    // Reference answers: plain sequential map, no scheduler at all.
    let expected: Vec<usize> = pieces.iter().map(f).collect();
    let mut samples = Vec::new();
    for &threads in thread_counts {
        let fixed_median_secs =
            time_dispatch(reps, &expected, &|| fixed_chunk_map(pieces, threads, f));
        let ws_median_secs = time_dispatch(reps, &expected, &|| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("vendored pool builder is infallible")
                .install(|| pieces.par_iter().map(f).collect())
        });
        samples.push(SchedSample {
            threads,
            fixed_median_secs,
            ws_median_secs,
            ws_speedup_vs_fixed: fixed_median_secs / ws_median_secs.max(f64::MIN_POSITIVE),
        });
    }
    JobBench {
        job: job.to_string(),
        samples,
    }
}

fn main() {
    let ci_mode = std::env::var("E15_CI").is_ok();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Reduced CI workload keeps the job under a minute on shared runners.
    let (n, avg_deg, reps) = if ci_mode {
        (16_000usize, 12.0, 5)
    } else {
        (80_000usize, 20.0, 7)
    };
    let thread_counts = vec![1usize, 2, BAR_THREADS];

    println!("# E15: skewed-partition scheduler scaling (work stealing vs fixed chunks)\n");
    println!("Host cores: {cores}; k = {K} machines; zipf s = {ZIPF_S} (machine 0 ~50% of edges);");
    println!("threads swept: {thread_counts:?}; {reps} timed fan-outs per point (median).");
    println!("Per-piece answers are asserted identical across dispatchers first.\n");

    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let g = gnp(n, avg_deg / n as f64, &mut rng);
    // Shuffle so each zipf slice is a uniform edge sample (structure-free),
    // exactly like a random partition with skewed machine loads.
    let mut edges = g.edges().to_vec();
    edges.shuffle(&mut rng);
    let pieces = zipf_pieces(n, &edges, K, ZIPF_S);

    let heaviest_piece_share = pieces[0].m() as f64 / edges.len() as f64;
    let first_chunk: usize = pieces
        .iter()
        .take(K.div_ceil(BAR_THREADS))
        .map(GraphView::m)
        .sum();
    let fixed_first_chunk_share = first_chunk as f64 / edges.len() as f64;
    println!(
        "Workload: n = {n}, m = {}, heaviest piece {:.1}% of edges; fixed dispatcher's",
        edges.len(),
        100.0 * heaviest_piece_share
    );
    println!(
        "first chunk at {BAR_THREADS} threads owns {:.1}% of edges.\n",
        100.0 * fixed_first_chunk_share
    );

    let jobs = vec![
        bench_job(
            "vc/two-approx-per-piece",
            &pieces,
            &thread_counts,
            reps,
            &|v| two_approx_cover(v).len(),
        ),
        bench_job(
            "matching/greedy-maximal-per-piece",
            &pieces,
            &thread_counts,
            reps,
            &|v| maximal_matching(v).len(),
        ),
    ];

    let mut table = Table::new(
        format!("Fan-out wall-clock: fixed chunks vs work stealing (k = {K}, zipf {ZIPF_S})"),
        &["job", "threads", "fixed secs", "ws secs", "ws speedup"],
    );
    for j in &jobs {
        for s in &j.samples {
            table.add_row(vec![
                j.job.clone(),
                s.threads.to_string(),
                format!("{:.5}", s.fixed_median_secs),
                format!("{:.5}", s.ws_median_secs),
                fmt_f(s.ws_speedup_vs_fixed),
            ]);
        }
    }
    println!("{table}");

    // The acceptance bar: on a genuinely parallel host, work stealing must
    // beat the frozen fixed-chunk dispatcher by >= 1.5x at 4 threads on the
    // linear-time VC family (the matching family is recorded, not gated —
    // solver superlinearity on the dense piece blurs its ratio).
    let bar_asserted = cores >= BAR_THREADS;
    let vc_at_bar = jobs[0]
        .samples
        .iter()
        .find(|s| s.threads == BAR_THREADS)
        .expect("bar thread count is in the sweep");
    if bar_asserted {
        assert!(
            vc_at_bar.ws_speedup_vs_fixed >= SPEEDUP_BAR,
            "work stealing must beat fixed chunks by >= {SPEEDUP_BAR}x at {BAR_THREADS} threads \
             on the skewed partition; measured {:.2}x",
            vc_at_bar.ws_speedup_vs_fixed
        );
        println!(
            "BAR PASSED: work stealing {:.2}x over fixed chunks at {BAR_THREADS} threads (>= {SPEEDUP_BAR}x).",
            vc_at_bar.ws_speedup_vs_fixed
        );
    } else {
        println!(
            "Host has {cores} core(s) < {BAR_THREADS}: speedup bar not asserted; measured {:.2}x recorded honestly.",
            vc_at_bar.ws_speedup_vs_fixed
        );
    }

    let report = BenchReport {
        host_available_parallelism: cores,
        ci_mode,
        seed: SEED,
        k: K,
        zipf_s: ZIPF_S,
        n,
        m: edges.len(),
        heaviest_piece_share,
        fixed_first_chunk_share,
        thread_counts,
        reps_per_sample: reps,
        speedup_bar: SPEEDUP_BAR,
        bar_asserted,
        jobs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sched.json", &json).expect("BENCH_sched.json is writable");
    println!("Wrote BENCH_sched.json ({} bytes).", json.len());
    println!("Expected shape: ~1.0x on single-core hosts; >= 1.5x at 4 threads on multi-core");
    println!("CI, because the fixed dispatcher's first worker owns ~86% of the skewed work.");
}
