//! Experiment E8 — MapReduce round complexity (Section 1.1, "MapReduce
//! Framework"): the coreset algorithm finishes in 2 rounds (1 if the input is
//! pre-randomised) within the Õ(n√n) memory budget, whereas the filtering
//! baseline of Lattanzi et al. needs ≥ 3 rounds at the same memory.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_mapreduce`.

use bench::table::fmt_f;
use bench::{trial_seed, Table};
use coresets::matching_coreset::MaximumMatchingCoreset;
use coresets::vc_coreset::PeelingVcCoreset;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use distsim::protocols::filtering::filtering_matching;
use graph::gen::er::gnm;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 8;

fn main() {
    println!("# E8 — MapReduce rounds: coreset algorithm vs filtering baseline\n");
    println!("Paper claim: with k = √n machines and Õ(n√n) memory, matching and vertex");
    println!("cover are solved in 2 MapReduce rounds (1 if the input is already randomly");
    println!("distributed), versus ≥ 3 rounds (6 at this memory) for filtering [46],");
    println!("which in exchange achieves a 2-approximation.\n");

    let mut table = Table::new(
        "E8: rounds, memory and approximation (m ≈ n^1.5)",
        &[
            "n",
            "m",
            "coreset rounds",
            "coreset rounds (pre-random)",
            "within memory",
            "matching ratio",
            "vc cover / matching-LB",
            "filtering rounds",
            "filtering ratio",
        ],
    );

    for n in [1000usize, 2500, 5000] {
        let m = (n as f64).powf(1.5) as usize * 2;
        let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(EXP_ID, n as u64));
        let g = gnm(n, m, &mut rng);
        let opt = maximum_matching(&g).len().max(1);

        let cfg = MapReduceConfig::paper_defaults(n);
        let sim = MapReduceSimulator::new(cfg);
        let seed = trial_seed(EXP_ID, 100 + n as u64);

        let mat = sim
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .expect("k >= 1");
        assert!(mat.answer.is_valid_for(&g));

        let mut pre_random_cfg = cfg;
        pre_random_cfg.input_already_random = true;
        let mat_pre = MapReduceSimulator::new(pre_random_cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .expect("k >= 1");

        let vc = sim
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), seed)
            .expect("k >= 1");
        assert!(vc.answer.covers(&g));

        // Filtering at the same per-machine memory (measured in edges).
        let memory_edges = (cfg.memory_words / 2) as usize;
        let filt = filtering_matching(&g, memory_edges.min(g.m() / 2).max(1), seed);

        table.add_row(vec![
            n.to_string(),
            g.m().to_string(),
            mat.round_count().to_string(),
            mat_pre.round_count().to_string(),
            (mat.within_memory_budget && vc.within_memory_budget).to_string(),
            fmt_f(opt as f64 / mat.answer.len().max(1) as f64),
            fmt_f(vc.answer.len() as f64 / opt as f64),
            filt.rounds.to_string(),
            fmt_f(opt as f64 / filt.matching.len().max(1) as f64),
        ]);
    }
    println!("{table}");
    println!("Expected shape: coreset rounds = 2 (1 pre-randomised) and within budget;");
    println!("filtering needs ≥ 3 rounds whenever the input exceeds one machine's memory,");
    println!("with a ratio ≤ 2 (it computes a maximal matching).");
}
