//! Experiment E5 — the shape of the Ω(n/α²) coreset-size lower bound for
//! matching (Theorem 3): on the hard distribution `D_Matching`, capping the
//! coreset size below the threshold collapses the approximation.
//!
//! Regenerate with `cargo run --release -p bench --bin exp_matching_lower_bound`.

use bench::table::fmt_f;
use bench::{trial_seed, Summary, Table};
use coresets::{CappedMatchingCoreset, DistributedMatching};
use graph::gen::hard::d_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EXP_ID: u64 = 5;
const TRIALS: u64 = 3;

fn main() {
    println!("# E5 — coreset-size lower bound for matching (Theorem 3)\n");
    println!("Paper claim: any α-approximate randomized coreset needs Ω(n/α²) edges.");
    println!("On D_Matching(n, α, k) the useful content of each machine's input is its");
    println!("Θ(n/k) planted-matching edges hidden among Θ(n/α) induced-matching edges;");
    println!("capping the coreset at s edges recovers only ~s·(α/k)·k = s·α of the");
    println!("planted matching, so the ratio degrades as s drops below n/α².\n");

    let n = 8000usize;
    let k = 8usize;

    let mut table = Table::new(
        format!("E5: D_Matching(n={n}, alpha, k={k}), capped maximum-matching coresets"),
        &[
            "alpha",
            "cap (edges/machine)",
            "cap / (n/alpha^2)",
            "matching size",
            "achieved ratio",
            "uncapped ratio",
        ],
    );

    for alpha in [4.0f64, 8.0] {
        let threshold = (n as f64 / (alpha * alpha)).round() as usize;
        // Sweep the cap across the threshold: well below, at, and above it.
        let caps = [
            threshold / 8,
            threshold / 4,
            threshold / 2,
            threshold,
            2 * threshold,
            4 * threshold,
        ];

        // Reference: the uncapped coreset's ratio on the same instances.
        for (cap_idx, &cap) in caps.iter().enumerate() {
            let mut ratios = Vec::new();
            let mut sizes = Vec::new();
            let mut uncapped_ratios = Vec::new();
            for t in 0..TRIALS {
                let seed = trial_seed(EXP_ID, (alpha as u64) * 1000 + cap_idx as u64 * 10 + t);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let inst = d_matching(n, alpha, k, &mut rng).expect("valid D_Matching parameters");
                let g = inst.graph.to_graph();
                let opt_lb = inst.matching_lower_bound(); // ~ n - n/alpha

                let capped = DistributedMatching::with_builder(k, CappedMatchingCoreset::new(cap))
                    .run(&g, seed)
                    .expect("k >= 1");
                let uncapped = DistributedMatching::new(k).run(&g, seed).expect("k >= 1");
                ratios.push(opt_lb as f64 / capped.matching.len().max(1) as f64);
                sizes.push(capped.matching.len() as f64);
                uncapped_ratios.push(opt_lb as f64 / uncapped.matching.len().max(1) as f64);
            }
            table.add_row(vec![
                fmt_f(alpha),
                cap.max(1).to_string(),
                fmt_f(cap.max(1) as f64 / threshold as f64),
                fmt_f(Summary::of(&sizes).mean),
                fmt_f(Summary::of(&ratios).mean),
                fmt_f(Summary::of(&uncapped_ratios).mean),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: for caps well below n/alpha^2 the achieved ratio exceeds alpha;");
    println!("as the cap passes the threshold the ratio falls towards the uncapped value.");
}
