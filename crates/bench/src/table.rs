//! Minimal markdown table builder used by the experiment binaries.

use std::fmt;

/// A markdown table with a caption, headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells must match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.caption)?;
        writeln!(f)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let format_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}", w = *w))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        writeln!(f, "{}", format_row(&self.headers))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", format_row(&sep))?;
        for row in &self.rows {
            writeln!(f, "{}", format_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals (table-friendly).
pub fn fmt_f(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_as_markdown() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a   | bbbb |"));
        assert!(s.contains("| 333 | 4    |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
    }
}
